// Cross-cutting tests: simulator tuning knobs, device catalog behavior,
// exposed-pipe-overlap (λ) modeling, and radius-2 programs end to end.
#include <gtest/gtest.h>

#include "model/perf_model.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "stencil/parser.hpp"
#include "stencil/reference.hpp"
#include "codegen/opencl_emitter.hpp"
#include "support/strings.hpp"

namespace scl {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::sim::Executor;
using scl::sim::SimMode;
using scl::sim::SimTuning;

DesignConfig hetero(std::int64_t h, int k, std::int64_t w) {
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = h;
  c.parallelism = {k, k, 1};
  c.tile_size = {w, w, 1};
  return c;
}

TEST(SimTuningTest, DisablingLatencyHidingExposesPipeTime) {
  const auto p = scl::stencil::make_fdtd2d(256, 256, 64);
  const DesignConfig c = hetero(8, 2, 64);
  const Executor on(fpga::virtex7_690t());
  SimTuning off_tuning;
  off_tuning.latency_hiding = false;
  const Executor off(fpga::virtex7_690t(), off_tuning);
  const auto r_on = on.run(p, c, SimMode::kTimingOnly);
  const auto r_off = off.run(p, c, SimMode::kTimingOnly);
  EXPECT_GT(r_off.phases.pipe_transfer, r_on.phases.pipe_transfer);
  EXPECT_GE(r_off.total_cycles, r_on.total_cycles);
}

TEST(SimTuningTest, LatencyHidingPreservesFunctionalResults) {
  const auto p = scl::stencil::make_fdtd2d(24, 24, 6);
  const DesignConfig c = hetero(3, 2, 12);
  SimTuning off_tuning;
  off_tuning.latency_hiding = false;
  const auto with_hiding =
      Executor(fpga::virtex7_690t()).run(p, c, SimMode::kFunctional);
  const auto without =
      Executor(fpga::virtex7_690t(), off_tuning).run(p, c, SimMode::kFunctional);
  for (int f = 0; f < p.field_count(); ++f) {
    EXPECT_TRUE((*with_hiding.fields)[static_cast<std::size_t>(f)].equals_on(
        (*without.fields)[static_cast<std::size_t>(f)], p.grid_box()));
  }
}

TEST(DeviceCatalogTest, FasterDeviceRunsFewerMilliseconds) {
  // KU115: higher clock and more bandwidth; same design must take fewer
  // wall-clock ms (and no more cycles than proportional).
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const DesignConfig c = hetero(8, 2, 64);
  const auto v7 =
      Executor(fpga::virtex7_690t()).run(p, c, SimMode::kTimingOnly);
  const auto ku =
      Executor(fpga::kintex_ku115()).run(p, c, SimMode::kTimingOnly);
  EXPECT_LT(ku.total_ms, v7.total_ms);
}

TEST(DeviceCatalogTest, LaunchDelayScalesMeasuredTime) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const DesignConfig c = hetero(8, 2, 64);
  fpga::DeviceSpec fast = fpga::virtex7_690t();
  fast.kernel_launch_cycles = 0;
  const auto with_launch =
      Executor(fpga::virtex7_690t()).run(p, c, SimMode::kTimingOnly);
  const auto without =
      Executor(fast).run(p, c, SimMode::kTimingOnly);
  EXPECT_LT(without.total_cycles, with_launch.total_cycles);
  EXPECT_EQ(without.phases.launch, 0);
}

TEST(LambdaModelTest, ExposedPipeTimeAppearsWhenStripsDwarfCompute) {
  // A deliberately communication-heavy program: six mutable fields, each
  // read across both sides, on skinny tiles — strips rival the per-stage
  // compute, so the model must report λ > 0.
  const auto p = scl::stencil::make_fdtd3d(256, 256, 256, 64);
  const model::PerfModel m(p, fpga::virtex7_690t());
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = 4;
  c.parallelism = {2, 2, 2};
  c.tile_size = {4, 64, 64};
  c.unroll = 16;  // fast compute, slow pipes
  const auto pred = m.predict(c);
  EXPECT_GT(pred.lambda, 0.0);
  EXPECT_GT(pred.l_share_exposed, 0.0);
}

TEST(RadiusTwoTest, FunctionalBitExactAcrossDesigns) {
  const auto p = scl::stencil::parse_program(R"(
stencil "r2" dims 2 grid 26 26 iterations 6
field u init affine 2 3 0 5 53
stage s writes u:
    0.5f * $u(0,0)
    + 0.08f * ($u(-1,0) + $u(1,0) + $u(0,-1) + $u(0,1))
    + 0.045f * ($u(-2,0) + $u(2,0) + $u(0,-2) + $u(0,2))
)");
  EXPECT_EQ(p.max_radius(), 2);
  EXPECT_EQ(p.delta_w(0), 4);
  stencil::ReferenceExecutor ref(p);
  ref.run(6);
  for (const DesignKind kind :
       {DesignKind::kBaseline, DesignKind::kHeterogeneous}) {
    DesignConfig c = hetero(3, 2, 8);
    c.kind = kind;
    const auto result =
        Executor(fpga::virtex7_690t()).run(p, c, SimMode::kFunctional);
    EXPECT_TRUE((*result.fields)[0].equals_on(ref.field(0), p.grid_box()))
        << sim::to_string(kind);
  }
}

TEST(RadiusTwoTest, TimingShapeDedupHandlesWideReach) {
  // Regression for the fuzzer-found bug: regions within (radius * h +
  // stage radius) of the border are not interchangeable with interior
  // regions; the timing fast path must still equal the functional run.
  const auto p = scl::stencil::parse_program(R"(
stencil "r2-1d" dims 1 grid 17 iterations 5
field u init affine 3 0 0 1 31
stage s writes u: 0.3f * ($u(-2) + $u(0) + $u(2))
)");
  DesignConfig c;
  c.kind = DesignKind::kBaseline;
  c.fused_iterations = 1;
  c.parallelism = {1, 1, 1};
  c.tile_size = {3, 1, 1};
  const Executor exec(fpga::virtex7_690t());
  EXPECT_EQ(exec.run(p, c, SimMode::kFunctional).total_cycles,
            exec.run(p, c, SimMode::kTimingOnly).total_cycles);
}

}  // namespace
}  // namespace scl

namespace scl {
namespace {

TEST(CodegenPreconditionTest, LambdaOnlyStagesCannotEmitCode) {
  // Stages built without make_stage() carry no symbolic formula; code
  // generation must fail loudly rather than emit placeholders.
  stencil::Stage raw;
  raw.name = "opaque";
  raw.output_field = 0;
  raw.reads = {{0, stencil::Offset{0, 0, 0}}};
  raw.update = [](const stencil::CellReader& r) {
    return r.read(0, stencil::Offset{0, 0, 0}) * 0.5f;
  };
  const stencil::StencilProgram p(
      "opaque", 1, {16, 1, 1}, 4,
      {stencil::make_field("A", "constant 1")}, {std::move(raw)});
  sim::DesignConfig c;
  c.kind = sim::DesignKind::kBaseline;
  c.fused_iterations = 2;
  c.parallelism = {2, 1, 1};
  c.tile_size = {8, 1, 1};
  EXPECT_THROW(codegen::generate_opencl(p, c, fpga::virtex7_690t()), Error);
}

TEST(CodegenPreconditionTest, BuildScriptListsEveryKernel) {
  const auto p = stencil::make_jacobi2d(64, 64, 8);
  const DesignConfig c = hetero(4, 2, 32);
  const auto code = codegen::generate_opencl(p, c, fpga::virtex7_690t());
  EXPECT_EQ(scl::count_occurrences(code.build_script, "--nk stencil_k"), 4u);
  EXPECT_NE(code.build_script.find("xocc -t hw"), std::string::npos);
  EXPECT_NE(code.build_script.find("kernel_frequency 200"),
            std::string::npos);
}

}  // namespace
}  // namespace scl
