// Property and fuzz tests for the stencild wire protocol
// (serve/wire.hpp): serialize/parse round-trips, hostile framing
// (truncation, oversized frames, byte-at-a-time and random chunking),
// and the no-crash/no-hang guarantee on arbitrary bytes.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace scl::serve {
namespace {

WireRequest random_request(Rng& rng) {
  WireRequest request;
  request.id = rng.uniform_int(0, 1 << 20);
  request.tenant = "tenant-" + std::to_string(rng.uniform_int(0, 9));
  if (rng.uniform_int(0, 1) == 0) {
    request.benchmark = "Jacobi-" + std::to_string(rng.uniform_int(1, 3)) + "D";
  } else {
    // Exercise JSON string escaping: quotes, braces, newlines.
    request.stencil_text =
        "stencil \"s" + std::to_string(rng.uniform_int(0, 99)) +
        "\" {\n  a[i] = 0.5 * (a[i-1] + a[i+1]);\n}";
  }
  if (rng.uniform_int(0, 1) == 0) {
    request.grid_dims = static_cast<int>(rng.uniform_int(1, 3));
    request.grid = {1, 1, 1};
    for (int d = 0; d < request.grid_dims; ++d) {
      request.grid[d] = rng.uniform_int(1, 1 << 14);
    }
  }
  request.iterations = rng.uniform_int(0, 1 << 10);
  request.priority = static_cast<int>(rng.uniform_int(-4, 4));
  request.timeout_ms = rng.uniform_int(0, 60000);
  return request;
}

void expect_equal(const WireRequest& a, const WireRequest& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.stencil_text, b.stencil_text);
  EXPECT_EQ(a.grid_dims, b.grid_dims);
  for (int d = 0; d < a.grid_dims; ++d) EXPECT_EQ(a.grid[d], b.grid[d]);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.timeout_ms, b.timeout_ms);
}

TEST(WireTest, RequestRoundTripProperty) {
  Rng rng(0x5eed0001);
  for (int i = 0; i < 300; ++i) {
    const WireRequest request = random_request(rng);
    const std::string frame = serialize_request(request);
    EXPECT_EQ(frame.find('\n'), std::string::npos)
        << "a frame must stay on one line even with embedded newlines: "
        << frame;
    expect_equal(request, parse_request(frame));
  }
}

TEST(WireTest, ResponseRoundTripProperty) {
  Rng rng(0x5eed0002);
  const char* statuses[] = {"ok", "error", "shed", "quota", "rate_limited"};
  for (int i = 0; i < 300; ++i) {
    WireResponse response;
    response.id = rng.uniform_int(0, 1 << 20);
    response.status = statuses[rng.uniform_int(0, 4)];
    if (response.ok()) {
      response.key = "00ff";
      response.name = "Jacobi-2D";
      response.from_cache = rng.uniform_int(0, 1) == 1;
      response.from_memory = response.from_cache && rng.uniform_int(0, 1) == 1;
      response.coalesced = rng.uniform_int(0, 1) == 1;
      response.speedup = rng.uniform_double(0.25, 8.0);
      response.latency_ms = rng.uniform_double(0.0, 5000.0);
    } else {
      response.error = "synthesis failed: \"quoted\" detail\nline two";
    }
    const WireResponse parsed =
        parse_response(serialize_response(response));
    EXPECT_EQ(parsed.id, response.id);
    EXPECT_EQ(parsed.status, response.status);
    EXPECT_EQ(parsed.error, response.error);
    EXPECT_EQ(parsed.key, response.key);
    EXPECT_EQ(parsed.name, response.name);
    EXPECT_EQ(parsed.from_cache, response.from_cache);
    EXPECT_EQ(parsed.from_memory, response.from_memory);
    EXPECT_EQ(parsed.coalesced, response.coalesced);
    if (response.ok()) {
      EXPECT_DOUBLE_EQ(parsed.speedup, response.speedup);
      EXPECT_DOUBLE_EQ(parsed.latency_ms, response.latency_ms);
    }
  }
}

TEST(WireTest, ResponseDiagnosticsRoundTripAndStayAbsentWhenEmpty) {
  WireResponse response;
  response.id = 7;
  response.status = "error";
  response.error = "static verification failed";
  response.diagnostics.push_back(
      {"SCL406", "error", "pipe 'p_k0_k1' is unbalanced: 4 writes, 3 reads"});
  response.diagnostics.push_back(
      {"SCL409", "warning", "analysis incomplete: 1 construct skipped"});

  const WireResponse parsed = parse_response(serialize_response(response));
  ASSERT_EQ(parsed.diagnostics.size(), 2u);
  EXPECT_EQ(parsed.diagnostics[0].code, "SCL406");
  EXPECT_EQ(parsed.diagnostics[0].severity, "error");
  EXPECT_EQ(parsed.diagnostics[0].message,
            "pipe 'p_k0_k1' is unbalanced: 4 writes, 3 reads");
  EXPECT_EQ(parsed.diagnostics[1].code, "SCL409");
  EXPECT_EQ(parsed.diagnostics[1].severity, "warning");

  // Older clients parse error frames unchanged: no diagnostics => the key
  // is not emitted at all.
  response.diagnostics.clear();
  const std::string frame = serialize_response(response);
  EXPECT_EQ(frame.find("diagnostics"), std::string::npos);
  EXPECT_TRUE(parse_response(frame).diagnostics.empty());
}

TEST(WireTest, ParseRejectsMalformedRequests) {
  // Every rejection is a structured Error, never a crash or a silent
  // default.
  const char* bad[] = {
      "",                                      // empty
      "{",                                     // truncated JSON
      "[1,2,3]",                               // not an object
      "{\"id\":1}",                            // no discriminator
      "{\"benchmark\":\"a\",\"stencil_text\":\"b\"}",  // both
      "{\"v\":99,\"benchmark\":\"a\"}",        // future version
      "{\"benchmark\":\"a\",\"tenant\":\"\"}",         // empty tenant
      "{\"benchmark\":\"a\",\"grid\":[]}",     // empty grid
      "{\"benchmark\":\"a\",\"grid\":[1,2,3,4]}",      // 4-D grid
      "{\"benchmark\":\"a\",\"grid\":[0]}",    // non-positive extent
      "{\"benchmark\":\"a\",\"iterations\":-1}",
      "{\"benchmark\":\"a\",\"timeout_ms\":-5}",
      "{\"benchmark\":\"a\"",                  // unterminated object
      "nonsense",
  };
  for (const char* frame : bad) {
    EXPECT_THROW(parse_request(frame), Error) << "frame: " << frame;
  }
  EXPECT_THROW(parse_response("{\"id\":1}"), Error) << "missing status";
}

TEST(WireTest, ParseAcceptsMinimalRequest) {
  const WireRequest request = parse_request("{\"benchmark\":\"Jacobi-2D\"}");
  EXPECT_EQ(request.id, 0);
  EXPECT_EQ(request.tenant, "default");
  EXPECT_EQ(request.benchmark, "Jacobi-2D");
  EXPECT_EQ(request.grid_dims, 0);
}

TEST(WireTest, FrameReaderByteAtATime) {
  Rng rng(0x5eed0003);
  std::vector<WireRequest> requests;
  std::string stream;
  for (int i = 0; i < 20; ++i) {
    requests.push_back(random_request(rng));
    stream += serialize_request(requests.back()) + "\n";
  }
  FrameReader reader;
  std::vector<std::string> frames;
  for (const char byte : stream) {
    reader.feed(std::string_view(&byte, 1));
    while (auto frame = reader.next()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), requests.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    expect_equal(requests[i], parse_request(frames[i]));
  }
}

TEST(WireTest, FrameReaderRandomChunkingProperty) {
  Rng rng(0x5eed0004);
  for (int round = 0; round < 20; ++round) {
    std::vector<WireRequest> requests;
    std::string stream;
    const int count = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < count; ++i) {
      requests.push_back(random_request(rng));
      stream += serialize_request(requests.back()) + "\n";
    }
    FrameReader reader;
    std::vector<std::string> frames;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(stream.size() - offset)));
      reader.feed(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
      while (auto frame = reader.next()) frames.push_back(*frame);
    }
    ASSERT_EQ(frames.size(), requests.size()) << "round " << round;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      expect_equal(requests[i], parse_request(frames[i]));
    }
    EXPECT_EQ(reader.pending_bytes(), 0u);
  }
}

TEST(WireTest, FrameReaderSkipsBlankLinesAndTrimsCarriageReturns) {
  FrameReader reader;
  reader.feed("\n  \n{\"a\":1}\r\n\n{\"b\":2} \n");
  EXPECT_EQ(reader.next(), "{\"a\":1}");
  EXPECT_EQ(reader.next(), "{\"b\":2}");
  EXPECT_EQ(reader.next(), std::nullopt);
}

TEST(WireTest, FrameReaderOversizedFrameThrowsOnceThenRecovers) {
  FrameReader reader(/*max_frame_bytes=*/64);
  // The frame blows the bound long before its newline arrives: next()
  // reports it exactly once, swallows the tail, and the following frame
  // decodes normally.
  reader.feed(std::string(200, 'x'));
  EXPECT_THROW(reader.next(), Error);
  EXPECT_EQ(reader.next(), std::nullopt);  // only one error per frame
  reader.feed(std::string(100, 'y'));     // still the same doomed frame
  EXPECT_EQ(reader.next(), std::nullopt);
  reader.feed("tail\n{\"ok\":true}\n");
  EXPECT_EQ(reader.next(), "{\"ok\":true}");
}

TEST(WireTest, FrameReaderOversizedFrameArrivingWholeAlsoRecovers) {
  FrameReader reader(/*max_frame_bytes=*/16);
  reader.feed(std::string(40, 'z') + "\n{\"ok\":1}\n");
  EXPECT_THROW(reader.next(), Error);
  EXPECT_EQ(reader.next(), "{\"ok\":1}");
}

TEST(WireTest, FrameReaderNeverCrashesOnRandomBytes) {
  // Fuzz: arbitrary bytes in arbitrary chunks. The reader must only ever
  // (a) yield frames, (b) throw scl::Error, or (c) ask for more bytes —
  // and parse_request on whatever comes out must throw Error, not
  // anything else. Bounded input, so no hang is possible by
  // construction; the invariant is no crash and no foreign exception.
  Rng rng(0x5eed0005);
  for (int round = 0; round < 50; ++round) {
    FrameReader reader(/*max_frame_bytes=*/256);
    const int length = static_cast<int>(rng.uniform_int(1, 2048));
    std::string bytes(static_cast<std::size_t>(length), '\0');
    for (char& c : bytes) {
      // Bias toward structural JSON bytes so some frames nearly parse.
      const std::int64_t roll = rng.uniform_int(0, 99);
      if (roll < 20) {
        c = "{}[]\",:0.\n"[rng.uniform_int(0, 9)];
      } else {
        c = static_cast<char>(rng.uniform_int(0, 255));
      }
    }
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const std::size_t chunk = static_cast<std::size_t>(rng.uniform_int(
          1, std::min<std::int64_t>(
                 64, static_cast<std::int64_t>(bytes.size() - offset))));
      reader.feed(std::string_view(bytes).substr(offset, chunk));
      offset += chunk;
      while (true) {
        std::optional<std::string> frame;
        try {
          frame = reader.next();
        } catch (const Error&) {
          continue;  // oversized frame reported; reader keeps going
        }
        if (!frame) break;
        try {
          (void)parse_request(*frame);
        } catch (const Error&) {
          // Expected for garbage; anything else fails the test.
        }
      }
    }
  }
}

}  // namespace
}  // namespace scl::serve
