#include "core/eval_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "core/optimizer.hpp"
#include "stencil/kernels.hpp"
#include "support/thread_pool.hpp"

namespace scl::core {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKey;
using scl::sim::DesignKind;

DesignConfig sample_config(std::int64_t h) {
  DesignConfig c;
  c.kind = DesignKind::kBaseline;
  c.fused_iterations = h;
  c.parallelism = {2, 2, 1};
  c.tile_size = {64, 64, 1};
  return c;
}

CachedEvaluation fake_eval(double cycles) {
  CachedEvaluation eval;
  eval.prediction.total_cycles = cycles;
  eval.resources.total = fpga::ResourceVector{1, 2, 3, 4};
  return eval;
}

TEST(EvalCacheTest, MissThenHitAccounting) {
  EvalCache cache;
  const DesignKey key = sample_config(4).key();
  CachedEvaluation out;
  EXPECT_FALSE(cache.lookup(key, &out));
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  EXPECT_TRUE(cache.insert(key, fake_eval(123.0)));
  EXPECT_TRUE(cache.lookup(key, &out));
  EXPECT_EQ(out.prediction.total_cycles, 123.0);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(EvalCacheTest, FindOrComputeComputesOnce) {
  EvalCache cache;
  int computes = 0;
  const DesignKey key = sample_config(8).key();
  auto compute = [&] {
    ++computes;
    return fake_eval(7.0);
  };
  EXPECT_EQ(cache.find_or_compute(key, compute).prediction.total_cycles, 7.0);
  EXPECT_EQ(cache.find_or_compute(key, compute).prediction.total_cycles, 7.0);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hits(), 1);    // second call served from cache
  EXPECT_EQ(cache.misses(), 1);  // only the first lookup missed
}

TEST(EvalCacheTest, InsertIsFirstWriterWins) {
  EvalCache cache;
  const DesignKey key = sample_config(2).key();
  EXPECT_TRUE(cache.insert(key, fake_eval(1.0)));
  EXPECT_FALSE(cache.insert(key, fake_eval(2.0)));
  CachedEvaluation out;
  ASSERT_TRUE(cache.lookup(key, &out));
  EXPECT_EQ(out.prediction.total_cycles, 1.0);
}

TEST(EvalCacheTest, DistinctConfigsGetDistinctKeys) {
  // Every axis of the design space must feed the key: sweep each field
  // and assert no two generated configs collide.
  std::vector<DesignConfig> configs;
  for (const std::int64_t h : {1, 2, 4}) {
    for (const int k : {1, 2, 4}) {
      for (const std::int64_t w : {32, 64}) {
        for (const int unroll : {1, 2}) {
          for (const std::int64_t shrink : {0, 1}) {
            DesignConfig c;
            c.kind = shrink > 0 ? DesignKind::kHeterogeneous
                                : DesignKind::kBaseline;
            c.fused_iterations = h;
            c.parallelism = {k, 4, 1};
            c.tile_size = {w, 32, 1};
            c.edge_shrink = {0, shrink, 0};
            c.unroll = unroll;
            configs.push_back(c);
          }
        }
      }
    }
  }
  // Both kinds of an otherwise identical config must also differ.
  DesignConfig het = configs.front();
  het.kind = DesignKind::kHeterogeneous;
  configs.push_back(het);

  std::set<DesignKey> keys;
  for (const DesignConfig& c : configs) keys.insert(c.key());
  EXPECT_EQ(keys.size(), configs.size());
}

TEST(EvalCacheTest, HashMatchesKeyEquality) {
  const DesignConfig a = sample_config(4);
  DesignConfig b = sample_config(4);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.key(), b.key());
  b.unroll = 2;
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.hash(), b.hash());
}

TEST(EvalCacheTest, ClearResetsContentsAndCounters) {
  EvalCache cache;
  const DesignKey key = sample_config(16).key();
  cache.insert(key, fake_eval(5.0));
  CachedEvaluation out;
  EXPECT_TRUE(cache.lookup(key, &out));
  cache.clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_FALSE(cache.lookup(key, &out));
}

TEST(EvalCacheTest, ConcurrentFindOrComputeConverges) {
  EvalCache cache;
  ThreadPool pool(8);
  const int n = 512;
  std::vector<double> results(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](std::int64_t i) {
    // 16 distinct keys, hammered from 8 threads.
    const DesignKey key = sample_config(1 + (i % 16)).key();
    results[static_cast<std::size_t>(i)] =
        cache
            .find_or_compute(key,
                             [&] { return fake_eval(100.0 + (i % 16)); })
            .prediction.total_cycles;
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 100.0 + (i % 16));
  }
  EXPECT_EQ(cache.size(), 16);
  EXPECT_EQ(cache.hits() + cache.misses(), n);
}

TEST(EvalCacheTest, TinyCapacitySpillsToOverflowCorrectly) {
  // A 4-slot table forces most entries through the locked overflow map;
  // hit/miss semantics and size() must be indistinguishable from the
  // lock-free fast path.
  EvalCache cache(4);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(cache.insert(sample_config(1 + i).key(),
                             fake_eval(static_cast<double>(i))));
  }
  EXPECT_EQ(cache.size(), n);
  for (int i = 0; i < n; ++i) {
    CachedEvaluation out;
    ASSERT_TRUE(cache.lookup(sample_config(1 + i).key(), &out)) << i;
    EXPECT_EQ(out.prediction.total_cycles, static_cast<double>(i));
    EXPECT_FALSE(cache.insert(sample_config(1 + i).key(), fake_eval(-1.0)));
  }
  EXPECT_EQ(cache.hits(), n);
}

TEST(EvalCacheTest, ClearBumpsEpochAndSlotsAreReclaimable) {
  EvalCache cache(8);  // small: clear()+reinsert reclaims stale slots
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      cache.insert(sample_config(1 + i).key(), fake_eval(round * 100.0 + i));
    }
    EXPECT_EQ(cache.size(), 20);
    CachedEvaluation out;
    ASSERT_TRUE(cache.lookup(sample_config(5).key(), &out));
    EXPECT_EQ(out.prediction.total_cycles, round * 100.0 + 4);
    cache.clear();
    EXPECT_EQ(cache.size(), 0);
    EXPECT_FALSE(cache.lookup(sample_config(5).key(), &out));
    EXPECT_EQ(cache.misses(), 1);  // counters restarted by clear()
    cache.clear();
  }
}

TEST(EvalCacheTest, ConcurrentInsertersDedupeExactly) {
  // 8 threads hammer insert() on 16 shared keys: the busy-wait dedupe on
  // the write path must keep size() exact — one winner per key. TSan
  // runs this in CI.
  EvalCache cache;
  ThreadPool pool(8);
  std::atomic<int> winners{0};
  pool.parallel_for(512, [&](std::int64_t i) {
    const DesignKey key = sample_config(1 + (i % 16)).key();
    if (cache.insert(key, fake_eval(100.0 + (i % 16)))) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(cache.size(), 16);
  EXPECT_EQ(winners.load(), 16);
  for (int k = 0; k < 16; ++k) {
    CachedEvaluation out;
    ASSERT_TRUE(cache.lookup(sample_config(1 + k).key(), &out));
    EXPECT_EQ(out.prediction.total_cycles, 100.0 + k);
  }
}

TEST(EvalCacheTest, ConcurrentReadersSeeConsistentValues) {
  // Readers race writers on a warm and a cold half of the key set; every
  // observed hit must carry the full, untorn value. TSan runs this in
  // CI.
  EvalCache cache;
  ThreadPool pool(8);
  for (int k = 0; k < 8; ++k) {
    cache.insert(sample_config(1 + k).key(), fake_eval(1000.0 + k));
  }
  pool.parallel_for(2048, [&](std::int64_t i) {
    const int k = static_cast<int>(i % 16);
    const DesignKey key = sample_config(1 + k).key();
    CachedEvaluation out;
    if (cache.lookup(key, &out)) {
      EXPECT_EQ(out.prediction.total_cycles, 1000.0 + k);
      EXPECT_EQ(out.resources.total.lut, 2);
    } else {
      cache.insert(key, fake_eval(1000.0 + k));
    }
  });
  EXPECT_EQ(cache.size(), 16);
}

TEST(EvalCacheTest, OptimizerSearchesShareTheCache) {
  // The Pareto sweep walks the full feasible set; a following
  // optimize_baseline() — pruned or exhaustive — revisits a subset of
  // those configs and must be served mostly from cache.
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const Optimizer opt(p, OptimizerOptions{});
  (void)opt.pareto_frontier(DesignKind::kBaseline);
  const DseStats after_pareto = opt.dse_stats();
  EXPECT_GT(after_pareto.candidates_evaluated, 0);

  (void)opt.optimize_baseline();
  const DseStats after_baseline = opt.dse_stats();
  const std::int64_t walked =
      after_baseline.candidates_evaluated - after_pareto.candidates_evaluated;
  const std::int64_t hits =
      after_baseline.cache_hits - after_pareto.cache_hits;
  EXPECT_GT(walked, 0);
  // Not 100%: the sweep's chain early exit never priced the over-budget
  // fusion tails, and a pruned search may still bound-keep a few of them.
  EXPECT_GT(static_cast<double>(hits), 0.5 * static_cast<double>(walked));
}

}  // namespace
}  // namespace scl::core
