// Property tests for the branch-and-bound DSE layer:
//
//   * the pruned search must choose designs byte-identical to the
//     exhaustive search on every suite kernel (the pruning-correctness
//     half of the determinism contract; thread-count invariance lives in
//     dse_determinism_test.cpp),
//   * LowerBoundModel must be admissible — never above the exact model —
//     across whole candidate spaces, including the heterogeneous
//     edge-shrink configs,
//   * ParetoFront must keep exactly the non-dominated points regardless
//     of insertion order (checked against an O(n^2) batch reference on
//     randomized inputs).
#include "core/optimizer.hpp"
#include "core/pareto_front.hpp"
#include "model/lower_bound.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "stencil/kernels.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scl::core {
namespace {

using scl::stencil::BenchmarkInfo;
using scl::stencil::StencilProgram;

void expect_identical(const DesignPoint& a, const DesignPoint& b,
                      const std::string& what) {
  EXPECT_EQ(a.config, b.config) << what << ": configs differ";
  EXPECT_EQ(0, std::memcmp(&a.prediction, &b.prediction,
                           sizeof(model::Prediction)))
      << what << ": predictions differ";
  EXPECT_EQ(a.resources.total.bram18, b.resources.total.bram18)
      << what << ": resources differ";
}

/// A small instance of every suite kernel: big enough for a non-trivial
/// candidate space, small enough that the exhaustive reference stays
/// cheap under the sanitizers.
StencilProgram scaled(const BenchmarkInfo& info) {
  switch (info.dims) {
    case 1:
      return info.make_scaled({16384, 1, 1}, 48);
    case 2:
      return info.make_scaled({192, 192, 1}, 32);
    default:
      return info.make_scaled({48, 48, 48}, 16);
  }
}

TEST(DsePruneTest, PrunedOptimumMatchesExhaustiveOnEverySuiteKernel) {
  for (const BenchmarkInfo& info : scl::stencil::paper_benchmarks()) {
    const StencilProgram program = scaled(info);
    OptimizerOptions pruned_options;
    pruned_options.threads = 2;
    pruned_options.prune = true;
    OptimizerOptions exhaustive_options = pruned_options;
    exhaustive_options.prune = false;
    const Optimizer pruned(program, pruned_options);
    const Optimizer exhaustive(program, exhaustive_options);

    const DesignPoint base_p = pruned.optimize_baseline();
    const DesignPoint base_e = exhaustive.optimize_baseline();
    expect_identical(base_p, base_e, info.name + " baseline");
    // The searches must also agree on infeasibility: pruning may never
    // turn a solvable heterogeneous search into a ResourceError (or vice
    // versa). The scaled 1-D instance exercises exactly this branch.
    std::optional<DesignPoint> het_p;
    std::optional<DesignPoint> het_e;
    try {
      het_p = pruned.optimize_heterogeneous(base_p);
    } catch (const ResourceError&) {
    }
    try {
      het_e = exhaustive.optimize_heterogeneous(base_e);
    } catch (const ResourceError&) {
    }
    ASSERT_EQ(het_p.has_value(), het_e.has_value())
        << info.name << ": pruning changed heterogeneous feasibility";
    if (het_p.has_value()) {
      expect_identical(*het_p, *het_e, info.name + " heterogeneous");
    }

    const DseStats stats = pruned.dse_stats();
    EXPECT_GT(stats.candidates_pruned, 0)
        << info.name << ": pruning never engaged";
    EXPECT_EQ(exhaustive.dse_stats().candidates_pruned, 0)
        << info.name << ": exhaustive search must not prune";
  }
}

TEST(DsePruneTest, LowerBoundIsAdmissibleAcrossBaselineSpaces) {
  for (const char* name : {"Jacobi-2D", "HotSpot-3D", "FDTD-2D"}) {
    const StencilProgram program = scaled(scl::stencil::find_benchmark(name));
    OptimizerOptions options;
    options.threads = 1;
    const Optimizer optimizer(program, options);
    const model::LowerBoundModel bound_model(program, options.device);
    std::int64_t checked = 0;
    for (const CandidateChain& chain :
         optimizer.space().chains(sim::DesignKind::kBaseline)) {
      for (const sim::DesignConfig& config : chain.configs) {
        const model::LowerBound lb = bound_model.bound(config);
        const DesignPoint exact = optimizer.evaluate(config);
        ASSERT_LE(lb.cycles, exact.prediction.total_cycles)
            << name << " " << config.summary(program.dims());
        ASSERT_LE(lb.bram18, exact.resources.total.bram18)
            << name << " " << config.summary(program.dims());
        ++checked;
      }
    }
    EXPECT_GT(checked, 100) << name << ": space unexpectedly tiny";
  }
}

TEST(DsePruneTest, LowerBoundIsAdmissibleAcrossHbmReplicatedSpaces) {
  // The replication axis is live on HBM parts (R in {1, 2, 4, ...}); the
  // bound must stay under the exact model for every replicated candidate
  // of both families, or branch-and-bound could prune a true optimum.
  for (const fpga::DeviceSpec& device :
       {fpga::alveo_u280(), fpga::stratix10_mx()}) {
    const StencilProgram program =
        scaled(scl::stencil::find_benchmark("Jacobi-2D"));
    OptimizerOptions options;
    options.threads = 1;
    options.device = device;
    const Optimizer optimizer(program, options);
    const model::LowerBoundModel bound_model(program, options.device);
    ASSERT_GT(optimizer.space().replication_factors().size(), 1u)
        << device.name << ": replication axis did not open up";
    std::int64_t checked = 0;
    std::int64_t replicated = 0;
    std::vector<CandidateChain> chains =
        optimizer.space().chains(sim::DesignKind::kBaseline);
    const std::vector<CandidateChain> temporal =
        optimizer.space().temporal_chains();
    chains.insert(chains.end(), temporal.begin(), temporal.end());
    for (const CandidateChain& chain : chains) {
      for (const sim::DesignConfig& config : chain.configs) {
        const model::LowerBound lb = bound_model.bound(config);
        const DesignPoint exact = optimizer.evaluate(config);
        ASSERT_LE(lb.cycles, exact.prediction.total_cycles)
            << device.name << " " << config.summary(program.dims());
        ASSERT_LE(lb.bram18, exact.resources.total.bram18)
            << device.name << " " << config.summary(program.dims());
        ++checked;
        if (config.replication > 1) ++replicated;
      }
    }
    EXPECT_GT(checked, 100) << device.name << ": space unexpectedly tiny";
    EXPECT_GT(replicated, 0) << device.name << ": no replicated candidates";
  }
}

TEST(DsePruneTest, HbmPrunedOptimumMatchesExhaustive) {
  // Pruning correctness must hold with the replication axis live.
  const StencilProgram program =
      scaled(scl::stencil::find_benchmark("Jacobi-2D"));
  OptimizerOptions pruned_options;
  pruned_options.threads = 2;
  pruned_options.prune = true;
  pruned_options.device = fpga::alveo_u280();
  OptimizerOptions exhaustive_options = pruned_options;
  exhaustive_options.prune = false;
  const Optimizer pruned(program, pruned_options);
  const Optimizer exhaustive(program, exhaustive_options);
  const DesignPoint base_p = pruned.optimize_baseline();
  const DesignPoint base_e = exhaustive.optimize_baseline();
  expect_identical(base_p, base_e, "HBM baseline");
  expect_identical(pruned.optimize_temporal(), exhaustive.optimize_temporal(),
                   "HBM temporal");
  std::optional<DesignPoint> het_p;
  std::optional<DesignPoint> het_e;
  try {
    het_p = pruned.optimize_heterogeneous(base_p);
  } catch (const ResourceError&) {
  }
  try {
    het_e = exhaustive.optimize_heterogeneous(base_e);
  } catch (const ResourceError&) {
  }
  ASSERT_EQ(het_p.has_value(), het_e.has_value())
      << "pruning changed HBM heterogeneous feasibility";
  if (het_p.has_value()) {
    expect_identical(*het_p, *het_e, "HBM heterogeneous");
  }
}

TEST(DsePruneTest, DdrDevicesKeepTheSingletonReplicationAxis) {
  // DDR regression: the replication axis must not perturb single-bank
  // searches — the axis collapses to {1} and the chosen optimum carries
  // R=1, which keeps every pre-replication DDR optimum bit-identical.
  const StencilProgram program =
      scaled(scl::stencil::find_benchmark("Jacobi-2D"));
  for (const char* name : {"xc7vx690t", "xc7vx485t", "xcku115"}) {
    OptimizerOptions options;
    options.threads = 1;
    options.device = fpga::find_device(name);
    const Optimizer optimizer(program, options);
    EXPECT_EQ(optimizer.space().replication_factors(),
              std::vector<int>{1})
        << name;
    const DesignPoint base = optimizer.optimize_baseline();
    EXPECT_EQ(base.config.replication, 1) << name;
    const DesignPoint het = optimizer.optimize_heterogeneous(base);
    EXPECT_EQ(het.config.replication, 1) << name;

    // Explicitly pinning the axis to {1} must reproduce the same optima.
    OptimizerOptions pinned = options;
    pinned.replication_candidates = {1};
    const Optimizer pinned_opt(program, pinned);
    expect_identical(pinned_opt.optimize_baseline(), base,
                     std::string(name) + " pinned baseline");
  }
}

TEST(DsePruneTest, LowerBoundIsAdmissibleForHeterogeneousCandidates) {
  const StencilProgram program =
      scaled(scl::stencil::find_benchmark("HotSpot-2D"));
  OptimizerOptions options;
  options.threads = 1;
  const Optimizer optimizer(program, options);
  const DesignPoint baseline = optimizer.optimize_baseline();
  const model::LowerBoundModel bound_model(program, options.device);
  std::int64_t checked = 0;
  for (const sim::DesignConfig& config :
       optimizer.space().heterogeneous_candidates(baseline.config)) {
    const model::LowerBound lb = bound_model.bound(config);
    const DesignPoint exact = optimizer.evaluate(config);
    ASSERT_LE(lb.cycles, exact.prediction.total_cycles)
        << config.summary(program.dims());
    ASSERT_LE(lb.bram18, exact.resources.total.bram18)
        << config.summary(program.dims());
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(DsePruneTest, RetainedFrontierIsDeterministicAcrossThreadCounts) {
  const StencilProgram program =
      scaled(scl::stencil::find_benchmark("Jacobi-3D"));
  auto frontier_at = [&](int threads) {
    OptimizerOptions options;
    options.threads = threads;
    const Optimizer optimizer(program, options);
    const DesignPoint baseline = optimizer.optimize_baseline();
    (void)optimizer.optimize_heterogeneous(baseline);
    return optimizer.retained_frontier();
  };
  const std::vector<DesignPoint> serial = frontier_at(1);
  const std::vector<DesignPoint> parallel = frontier_at(8);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i], "frontier point");
  }
  // Staircase invariant: design_order-sorted, bram18 strictly decreasing.
  for (std::size_t i = 1; i < serial.size(); ++i) {
    EXPECT_TRUE(design_order(serial[i - 1], serial[i]));
    EXPECT_LT(serial[i].resources.total.bram18,
              serial[i - 1].resources.total.bram18);
  }
}

DesignPoint synthetic_point(scl::Rng& rng) {
  DesignPoint point;
  // Narrow value ranges on purpose: collisions in cycles and bram18 are
  // where dominance logic can go wrong.
  point.prediction.total_cycles =
      static_cast<double>(rng.uniform_int(1, 12)) * 1000.0;
  point.resources.total.bram18 = rng.uniform_int(1, 10);
  point.resources.total.ff = rng.uniform_int(1, 4);
  point.resources.total.lut = rng.uniform_int(1, 4);
  point.resources.total.dsp = rng.uniform_int(1, 4);
  // Distinct-enough config keys (exact duplicates still possible, which
  // the front must also handle).
  point.config.fused_iterations = rng.uniform_int(1, 64);
  point.config.unroll = static_cast<int>(rng.uniform_int(1, 16));
  point.config.tile_size[0] = rng.uniform_int(1, 64);
  return point;
}

/// O(n^2) reference: p survives iff no other point orders before it with
/// bram18 <= its own (matching Optimizer::pareto_frontier()'s staircase).
std::vector<DesignPoint> reference_front(std::vector<DesignPoint> points) {
  std::sort(points.begin(), points.end(), design_order);
  points.erase(std::unique(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return !design_order(a, b) &&
                                    !design_order(b, a);
                           }),
               points.end());
  std::vector<DesignPoint> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < i && !dominated; ++j) {
      dominated = points[j].resources.total.bram18 <=
                  points[i].resources.total.bram18;
    }
    if (!dominated) front.push_back(points[i]);
  }
  return front;
}

TEST(DsePruneTest, ParetoFrontMatchesBatchReferenceOnRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    scl::Rng rng(seed * 7919);
    std::vector<DesignPoint> points;
    const std::int64_t n = rng.uniform_int(1, 200);
    points.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) points.push_back(synthetic_point(rng));

    ParetoFront front;
    for (const DesignPoint& point : points) front.insert(point);

    const std::vector<DesignPoint> expected = reference_front(points);
    ASSERT_EQ(front.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      expect_identical(front.points()[i], expected[i],
                       "seed " + std::to_string(seed));
    }
  }
}

TEST(DsePruneTest, ParetoFrontIsInsertionOrderInvariant) {
  scl::Rng rng(42);
  std::vector<DesignPoint> points;
  for (int i = 0; i < 150; ++i) points.push_back(synthetic_point(rng));

  ParetoFront forward;
  for (const DesignPoint& point : points) forward.insert(point);

  // A deterministic shuffle (Fisher-Yates with the seeded Rng).
  std::vector<DesignPoint> shuffled = points;
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(shuffled[i], shuffled[j]);
  }
  ParetoFront backward;
  for (auto it = shuffled.rbegin(); it != shuffled.rend(); ++it) {
    backward.insert(*it);
  }

  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    expect_identical(forward.points()[i], backward.points()[i], "shuffled");
  }
}

}  // namespace
}  // namespace scl::core
