#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace scl {
namespace {

TEST(ErrorTest, CheckThrowsContractErrorWithContext) {
  try {
    SCL_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(SCL_CHECK(2 + 2 == 4, "math works"));
}

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw ResourceError("full"), Error);
  EXPECT_THROW(throw DeadlockError("stuck"), Error);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
}

TEST(MathTest, CeilDivRejectsBadOperands) {
  EXPECT_THROW(ceil_div(5, 0), ContractError);
  EXPECT_THROW(ceil_div(-1, 5), ContractError);
}

TEST(MathTest, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
  EXPECT_EQ(round_up(0, 4), 0);
}

TEST(MathTest, ProductAndSum) {
  EXPECT_EQ(product({}), 1);
  EXPECT_EQ(product({3, 4, 5}), 60);
  EXPECT_EQ(sum({}), 0);
  EXPECT_EQ(sum({3, 4, 5}), 12);
}

TEST(MathTest, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_FALSE(is_power_of_two(-4));
}

TEST(MathTest, Divisors) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  EXPECT_THROW(divisors(0), ContractError);
}

TEST(MathTest, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(5.0, 0.0), 5.0);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.1);  // splitmix spreads well over 1000 draws
  EXPECT_GT(max, 0.9);
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(str_cat("a", 1, 'b', 2.5), "a1b2.5");
  EXPECT_EQ(str_cat(), "");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("hello", "hello!"));
}

TEST(StringsTest, FormatFixed) {
  EXPECT_EQ(format_fixed(1.6489, 2), "1.65");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_THROW(format_fixed(1.0, -1), ContractError);
}

TEST(StringsTest, FormatSpeedup) { EXPECT_EQ(format_speedup(1.648), "1.65x"); }

TEST(StringsTest, FormatThousands) {
  EXPECT_EQ(format_thousands(0), "0");
  EXPECT_EQ(format_thousands(999), "999");
  EXPECT_EQ(format_thousands(1000), "1,000");
  EXPECT_EQ(format_thousands(1234567), "1,234,567");
  EXPECT_EQ(format_thousands(-1234567), "-1,234,567");
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(replace_all("aa", "a", "a"), "aa");
}

TEST(StringsTest, Repeat) {
  EXPECT_EQ(repeat("-", 3), "---");
  EXPECT_EQ(repeat("ab", 2), "abab");
  EXPECT_EQ(repeat("x", 0), "");
}

TEST(StringsTest, CountOccurrences) {
  EXPECT_EQ(count_occurrences("abcabc", "abc"), 2u);
  EXPECT_EQ(count_occurrences("aaaa", "aa"), 2u);  // non-overlapping
  EXPECT_EQ(count_occurrences("abc", ""), 0u);
  EXPECT_EQ(count_occurrences("abc", "xyz"), 0u);
}

TEST(TableTest, TextRendering) {
  TableWriter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(TableTest, CsvEscaping) {
  TableWriter t({"x"});
  t.add_row({"plain"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, MarkdownRendering) {
  TableWriter t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(LogTest, LevelFiltering) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  SCL_INFO() << "this must not crash and must be dropped";
  set_log_level(old);
  SUCCEED();
}

}  // namespace
}  // namespace scl
