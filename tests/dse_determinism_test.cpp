// The parallel DSE determinism contract: for any thread count, explore(),
// optimize_baseline()/optimize_heterogeneous() and pareto_frontier()
// return byte-identical results — candidate enumeration is decoupled from
// evaluation, results merge in enumeration order, and selection uses the
// explicit deterministic comparator instead of thread arrival order.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/optimizer.hpp"
#include "stencil/kernels.hpp"

namespace scl::core {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;

/// Exact comparison, doubles included: "byte-identical" is the contract.
void expect_identical(const DesignPoint& a, const DesignPoint& b,
                      const char* context) {
  EXPECT_EQ(a.config, b.config) << context;
  EXPECT_EQ(std::memcmp(&a.prediction, &b.prediction, sizeof(a.prediction)),
            0)
      << context;
  EXPECT_EQ(a.resources.total, b.resources.total) << context;
  EXPECT_EQ(a.resources.worst_kernel, b.resources.worst_kernel) << context;
  EXPECT_EQ(a.resources.buffer_elements_total, b.resources.buffer_elements_total)
      << context;
  EXPECT_EQ(a.resources.pipe_count, b.resources.pipe_count) << context;
}

void expect_identical(const std::vector<DesignPoint>& a,
                      const std::vector<DesignPoint>& b,
                      const char* context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i], b[i], context);
  }
}

struct Scenario {
  const char* name;
  scl::stencil::StencilProgram program;
};

std::vector<Scenario> scenarios() {
  // Scaled-down instances of the kernels the issue calls out; small
  // enough to sweep per thread count, large enough that the 2-D/3-D
  // spaces exercise every enumeration axis.
  std::vector<Scenario> out;
  out.push_back({"Jacobi-2D", scl::stencil::make_jacobi2d(512, 512, 64)});
  out.push_back({"Jacobi-3D", scl::stencil::make_jacobi3d(64, 64, 64, 16)});
  out.push_back({"HotSpot-3D", scl::stencil::make_hotspot3d(64, 64, 64, 16)});
  return out;
}

TEST(DseDeterminismTest, ParallelResultsMatchSerialExactly) {
  for (const Scenario& scenario : scenarios()) {
    OptimizerOptions serial_options;
    serial_options.threads = 1;
    const Optimizer serial(scenario.program, serial_options);

    const std::vector<DesignPoint> serial_explore =
        serial.explore(DesignKind::kBaseline);
    const DesignPoint serial_base = serial.optimize_baseline();
    const DesignPoint serial_het =
        serial.optimize_heterogeneous(serial_base);
    const std::vector<DesignPoint> serial_frontier =
        serial.pareto_frontier(DesignKind::kHeterogeneous);

    for (const int threads : {2, 8}) {
      SCOPED_TRACE(std::string(scenario.name) + " @ " +
                   std::to_string(threads) + " threads");
      OptimizerOptions options;
      options.threads = threads;
      const Optimizer parallel(scenario.program, options);
      EXPECT_EQ(parallel.dse_stats().threads, threads);

      expect_identical(parallel.explore(DesignKind::kBaseline),
                       serial_explore, "explore");
      const DesignPoint base = parallel.optimize_baseline();
      expect_identical(base, serial_base, "optimize_baseline");
      expect_identical(parallel.optimize_heterogeneous(base), serial_het,
                       "optimize_heterogeneous");
      expect_identical(parallel.pareto_frontier(DesignKind::kHeterogeneous),
                       serial_frontier, "pareto_frontier");
    }
  }
}

TEST(DseDeterminismTest, CrossFamilySearchesAreThreadCountInvariant) {
  // Both families enumerate into one retained frontier; the family word
  // leads the canonical key (pipe-tiling before temporal-shift at equal
  // cost), so interleaving the two searches must stay byte-identical at
  // any thread count, with pruning on or off.
  const auto program = scl::stencil::make_jacobi2d(512, 512, 64);
  for (const bool prune : {true, false}) {
    OptimizerOptions serial_options;
    serial_options.threads = 1;
    serial_options.prune = prune;
    const Optimizer serial(program, serial_options);
    const DesignPoint serial_base = serial.optimize_baseline();
    const DesignPoint serial_temporal = serial.optimize_temporal();
    const DesignPoint serial_het =
        serial.optimize_heterogeneous(serial_base);
    const std::vector<DesignPoint> serial_frontier =
        serial.retained_frontier();

    for (const int threads : {2, 5, 8}) {
      SCOPED_TRACE(std::string("prune=") + (prune ? "on" : "off") + " @ " +
                   std::to_string(threads) + " threads");
      OptimizerOptions options;
      options.threads = threads;
      options.prune = prune;
      const Optimizer parallel(program, options);
      const DesignPoint base = parallel.optimize_baseline();
      expect_identical(base, serial_base, "optimize_baseline");
      // Interleave: temporal search between the two spatial searches.
      expect_identical(parallel.optimize_temporal(), serial_temporal,
                       "optimize_temporal");
      expect_identical(parallel.optimize_heterogeneous(base), serial_het,
                       "optimize_heterogeneous");
      expect_identical(parallel.retained_frontier(), serial_frontier,
                       "cross-family retained_frontier");
    }
  }
}

TEST(DseDeterminismTest, CrossFamilyOptimaMatchWithPruningOnAndOff) {
  // Admissibility acceptance: for each family the branch-and-bound
  // optimum equals the exhaustive optimum, bit for bit.
  for (const Scenario& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    OptimizerOptions exhaustive_options;
    exhaustive_options.prune = false;
    const Optimizer exhaustive(scenario.program, exhaustive_options);
    OptimizerOptions pruned_options;
    pruned_options.prune = true;
    const Optimizer pruned(scenario.program, pruned_options);

    const DesignPoint base_e = exhaustive.optimize_baseline();
    const DesignPoint base_p = pruned.optimize_baseline();
    expect_identical(base_p, base_e, "baseline prune on/off");
    expect_identical(pruned.optimize_heterogeneous(base_p),
                     exhaustive.optimize_heterogeneous(base_e),
                     "heterogeneous prune on/off");
    expect_identical(pruned.optimize_temporal(),
                     exhaustive.optimize_temporal(),
                     "temporal prune on/off");
  }
}

TEST(DseDeterminismTest, RepeatedRunsAreStable) {
  // Same optimizer, repeated searches (now cache-warm): identical output.
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  OptimizerOptions options;
  options.threads = 4;
  const Optimizer opt(p, options);
  const std::vector<DesignPoint> first = opt.explore(DesignKind::kBaseline);
  const std::vector<DesignPoint> second = opt.explore(DesignKind::kBaseline);
  expect_identical(first, second, "cache-warm explore");
}

TEST(DseDeterminismTest, ComparatorBreaksLatencyTiesExplicitly) {
  // The satellite contract: equal-latency designs rank by BRAM, then
  // FF/LUT, then the canonical config key — never by enumeration order.
  DesignPoint a;
  a.config.fused_iterations = 8;
  a.prediction.total_cycles = 1000.0;
  a.resources.total = fpga::ResourceVector{100, 100, 10, 50};
  DesignPoint b = a;
  b.config.fused_iterations = 16;

  // Lower BRAM wins at equal latency.
  b.resources.total.bram18 = 40;
  EXPECT_TRUE(design_order(b, a));
  EXPECT_FALSE(design_order(a, b));

  // Equal BRAM: lower FF wins.
  b.resources.total.bram18 = 50;
  b.resources.total.ff = 90;
  EXPECT_TRUE(design_order(b, a));

  // Equal resources: the config key decides — and is antisymmetric.
  b.resources.total = a.resources.total;
  EXPECT_TRUE(design_order(a, b));   // h=8 orders before h=16
  EXPECT_FALSE(design_order(b, a));

  // Latency dominates everything.
  b.prediction.total_cycles = 999.0;
  b.resources.total = fpga::ResourceVector{100000, 100000, 1000, 5000};
  EXPECT_TRUE(design_order(b, a));

  // Irreflexive (a strict ordering).
  EXPECT_FALSE(design_order(a, a));
}

TEST(DseDeterminismTest, BestIsFeasibleAndNearOptimal) {
  // The chosen design must come from the feasible set and sit within the
  // near-tie band of the latency optimum (the selection may prefer a
  // marginally slower design with more compute units, never more).
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  OptimizerOptions options;
  options.threads = 1;
  const Optimizer opt(p, options);
  const DesignPoint best = opt.optimize_baseline();
  const std::vector<DesignPoint> feasible =
      opt.explore(DesignKind::kBaseline);

  bool found = false;
  for (const DesignPoint& point : feasible) {
    EXPECT_GE(point.prediction.total_cycles,
              best.prediction.total_cycles / 1.01);
    if (point.config == best.config) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace scl::core
