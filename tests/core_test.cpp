#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "stencil/kernels.hpp"

namespace scl::core {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;

// --- feature extraction -------------------------------------------------------

TEST(FeaturesTest, Jacobi2d) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 16);
  const StencilFeatures f = extract_features(p);
  EXPECT_EQ(f.name, "Jacobi-2D");
  EXPECT_EQ(f.dims, 2);
  EXPECT_EQ(f.field_count, 1);
  EXPECT_EQ(f.stage_count, 1);
  EXPECT_FALSE(f.multi_stage);
  EXPECT_TRUE(f.needs_double_buffer);
  EXPECT_EQ(f.ops_per_cell.adds, 4);
  EXPECT_EQ(f.ops_per_cell.muls, 1);
  EXPECT_EQ(f.delta_w[0], 2);
  EXPECT_EQ(f.hls.ii, 3);
  EXPECT_GT(f.flops_per_byte, 0.0);
}

TEST(FeaturesTest, FdtdIsMultiStageInPlace) {
  const auto p = scl::stencil::make_fdtd2d(64, 64, 16);
  const StencilFeatures f = extract_features(p);
  EXPECT_TRUE(f.multi_stage);
  EXPECT_FALSE(f.needs_double_buffer);
  EXPECT_EQ(f.stage_count, 3);
  EXPECT_EQ(f.mutable_field_count, 3);
}

TEST(FeaturesTest, ToStringMentionsKeyFacts) {
  const auto p = scl::stencil::make_hotspot3d(32, 32, 32, 8);
  const std::string s = extract_features(p).to_string();
  EXPECT_NE(s.find("HotSpot-3D"), std::string::npos);
  EXPECT_NE(s.find("3-D"), std::string::npos);
  EXPECT_NE(s.find("2 field(s)"), std::string::npos);
}

// --- resource estimation --------------------------------------------------------

TEST(ResourceEstimatorTest, HeteroSavesBramAtEqualShape) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 128);
  const fpga::ResourceModel model(fpga::virtex7_690t());
  DesignConfig base;
  base.kind = DesignKind::kBaseline;
  base.fused_iterations = 16;
  base.parallelism = {2, 2, 1};
  base.tile_size = {64, 64, 1};
  DesignConfig het = base;
  het.kind = DesignKind::kHeterogeneous;
  const DesignResources rb = estimate_design_resources(p, base, model);
  const DesignResources rh = estimate_design_resources(p, het, model);
  EXPECT_LT(rh.total.bram18, rb.total.bram18);
  EXPECT_EQ(rh.total.dsp, rb.total.dsp);
  EXPECT_EQ(rb.pipe_count, 0);
  EXPECT_GT(rh.pipe_count, 0);
}

TEST(ResourceEstimatorTest, BaselineBramGrowsWithFusionDepth) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 128);
  const fpga::ResourceModel model(fpga::virtex7_690t());
  DesignConfig c;
  c.kind = DesignKind::kBaseline;
  c.parallelism = {2, 2, 1};
  c.tile_size = {64, 64, 1};
  c.fused_iterations = 4;
  const auto r4 = estimate_design_resources(p, c, model);
  c.fused_iterations = 32;
  const auto r32 = estimate_design_resources(p, c, model);
  EXPECT_GT(r32.total.bram18, r4.total.bram18);
}

TEST(ResourceEstimatorTest, WorstKernelTracked) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 128);
  const fpga::ResourceModel model(fpga::virtex7_690t());
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.parallelism = {4, 4, 1};
  c.tile_size = {32, 32, 1};
  c.fused_iterations = 8;
  const auto r = estimate_design_resources(p, c, model);
  EXPECT_GT(r.worst_kernel.lut, 0);
  EXPECT_LT(r.worst_kernel.lut, r.total.lut);
  EXPECT_GT(r.buffer_elements_total, 0);
}

// --- optimizer -------------------------------------------------------------------

TEST(OptimizerTest, BaselineFitsBudget) {
  const auto p = scl::stencil::make_jacobi2d(2048, 2048, 256);
  const Optimizer opt(p, OptimizerOptions{});
  const DesignPoint base = opt.optimize_baseline();
  EXPECT_TRUE(base.resources.total.fits_within(opt.budget()));
  EXPECT_EQ(base.config.kind, DesignKind::kBaseline);
  EXPECT_GT(base.prediction.total_cycles, 0.0);
}

TEST(OptimizerTest, HeterogeneousKeepsParallelismAndUnroll) {
  const auto p = scl::stencil::make_jacobi2d(2048, 2048, 256);
  const Optimizer opt(p, OptimizerOptions{});
  const DesignPoint base = opt.optimize_baseline();
  const DesignPoint het = opt.optimize_heterogeneous(base);
  EXPECT_EQ(het.config.kind, DesignKind::kHeterogeneous);
  EXPECT_EQ(het.config.parallelism, base.config.parallelism);
  EXPECT_EQ(het.config.unroll, base.config.unroll);
  EXPECT_EQ(het.config.tile_size, base.config.tile_size);
  EXPECT_EQ(het.resources.total.dsp, base.resources.total.dsp);
}

TEST(OptimizerTest, HeterogeneousPredictedFaster) {
  const auto p = scl::stencil::make_jacobi2d(2048, 2048, 256);
  const Optimizer opt(p, OptimizerOptions{});
  const DesignPoint base = opt.optimize_baseline();
  const DesignPoint het = opt.optimize_heterogeneous(base);
  EXPECT_LT(het.prediction.total_cycles, base.prediction.total_cycles);
}

TEST(OptimizerTest, HeterogeneousFusesDeeperOrEqual) {
  // The paper's headline structural result: pipe sharing frees BRAM, so
  // the heterogeneous design can fuse at least as deep as the baseline.
  for (const char* name : {"Jacobi-2D", "HotSpot-2D", "Jacobi-3D"}) {
    const auto p = scl::stencil::find_benchmark(name).make_paper_scale();
    const Optimizer opt(p, OptimizerOptions{});
    const DesignPoint base = opt.optimize_baseline();
    const DesignPoint het = opt.optimize_heterogeneous(base);
    EXPECT_GE(het.config.fused_iterations, base.config.fused_iterations)
        << name;
  }
}

TEST(OptimizerTest, RejectsBadOptions) {
  const auto p = scl::stencil::make_jacobi1d(64, 8);
  OptimizerOptions bad;
  bad.resource_fraction = 0.0;
  EXPECT_THROW(Optimizer(p, bad), ContractError);
  bad.resource_fraction = 1.5;
  EXPECT_THROW(Optimizer(p, bad), ContractError);
}

TEST(OptimizerTest, ImpossibleBudgetThrowsResourceError) {
  const auto p = scl::stencil::make_jacobi2d(2048, 2048, 64);
  OptimizerOptions opts;
  opts.device.capacity = fpga::ResourceVector{100, 100, 1, 1};
  const Optimizer opt(p, opts);
  EXPECT_THROW(opt.optimize_baseline(), ResourceError);
}


TEST(OptimizerTest, ParetoFrontierIsSortedAndNonDominated) {
  const auto p = scl::stencil::make_jacobi2d(1024, 1024, 128);
  const Optimizer opt(p, OptimizerOptions{});
  const auto frontier = opt.pareto_frontier(DesignKind::kHeterogeneous);
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    // Ascending latency, strictly descending BRAM: no point dominates
    // another.
    EXPECT_LE(frontier[i - 1].prediction.total_cycles,
              frontier[i].prediction.total_cycles);
    EXPECT_GT(frontier[i - 1].resources.total.bram18,
              frontier[i].resources.total.bram18);
  }
  // Every frontier point fits the budget.
  for (const auto& point : frontier) {
    EXPECT_TRUE(point.resources.total.fits_within(opt.budget()));
  }
}

TEST(OptimizerTest, ParetoFrontierHeadMatchesBaselineOptimum) {
  const auto p = scl::stencil::make_jacobi2d(1024, 1024, 128);
  const Optimizer opt(p, OptimizerOptions{});
  const auto frontier = opt.pareto_frontier(DesignKind::kBaseline);
  const DesignPoint best = opt.optimize_baseline();
  ASSERT_FALSE(frontier.empty());
  EXPECT_DOUBLE_EQ(frontier.front().prediction.total_cycles,
                   best.prediction.total_cycles);
}
// --- framework end to end ----------------------------------------------------------

TEST(FrameworkTest, SynthesizeProducesConsistentReport) {
  const auto p = scl::stencil::make_jacobi2d(1024, 1024, 128);
  FrameworkOptions opts;
  const Framework fw(p, opts);
  const SynthesisReport rep = fw.synthesize();

  EXPECT_EQ(rep.features.name, "Jacobi-2D");
  EXPECT_GT(rep.baseline_sim.total_cycles, 0);
  EXPECT_GT(rep.heterogeneous_sim.total_cycles, 0);
  EXPECT_GT(rep.speedup, 1.0);
  // The model must underestimate the simulator for both designs (SS5.6).
  EXPECT_LT(rep.baseline.prediction.total_cycles,
            static_cast<double>(rep.baseline_sim.total_cycles));
  EXPECT_LT(rep.heterogeneous.prediction.total_cycles,
            static_cast<double>(rep.heterogeneous_sim.total_cycles));
  // Generated code present and structurally sound.
  EXPECT_GT(rep.code.kernel_count, 0);
  EXPECT_FALSE(rep.code.kernel_source.empty());
  EXPECT_FALSE(rep.code.host_source.empty());

  const std::string text = rep.to_string();
  EXPECT_NE(text.find("speedup"), std::string::npos);
  EXPECT_NE(text.find("baseline"), std::string::npos);
}

TEST(FrameworkTest, SimulationAndCodegenAreOptional) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  FrameworkOptions opts;
  opts.simulate = false;
  opts.generate_code = false;
  const Framework fw(p, opts);
  const SynthesisReport rep = fw.synthesize();
  EXPECT_EQ(rep.baseline_sim.total_cycles, 0);
  EXPECT_EQ(rep.speedup, 0.0);
  EXPECT_TRUE(rep.code.kernel_source.empty());
}

TEST(FrameworkTest, EvaluateBypassesDse) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 32);
  const Framework fw(p, FrameworkOptions{});
  DesignConfig c;
  c.kind = DesignKind::kBaseline;
  c.fused_iterations = 4;
  c.parallelism = {2, 2, 1};
  c.tile_size = {32, 32, 1};
  const DesignPoint point = fw.evaluate(c);
  EXPECT_GT(point.prediction.total_cycles, 0.0);
  EXPECT_GT(point.resources.total.bram18, 0);
}

}  // namespace
}  // namespace scl::core
