#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "stencil/formula.hpp"
#include "stencil/kernels.hpp"
#include "stencil/parser.hpp"
#include "stencil/reference.hpp"

namespace scl::stencil {
namespace {

constexpr const char* kJacobi = R"(
# Jacobi 2-D, small instance
stencil "Jacobi-2D" dims 2 grid 16 16 iterations 8
field A init affine 3 5 0 2 97
stage jacobi writes A:
    0.2f * ($A(0,0) + $A(0,-1) + $A(0,1) + $A(-1,0) + $A(1,0))
)";

TEST(ParserTest, ParsesHeaderFieldsAndStage) {
  const StencilProgram p = parse_program(kJacobi);
  EXPECT_EQ(p.name(), "Jacobi-2D");
  EXPECT_EQ(p.dims(), 2);
  EXPECT_EQ(p.grid_box(), Box::from_extents(2, {16, 16, 1}));
  EXPECT_EQ(p.iterations(), 8);
  EXPECT_EQ(p.field_count(), 1);
  EXPECT_EQ(p.stage_count(), 1);
  EXPECT_EQ(p.stage(0).name, "jacobi");
  EXPECT_EQ(p.stage(0).reads.size(), 5u);
  EXPECT_EQ(p.field(0).init_spec, "affine 3 5 0 2 97");
}

TEST(ParserTest, ParsedProgramMatchesBuiltinBenchmark) {
  // The parsed Jacobi-2D must compute exactly what the built-in factory
  // computes (same formula, same init spec -> bit-identical runs).
  const StencilProgram parsed = parse_program(kJacobi);
  const StencilProgram builtin = make_jacobi2d(16, 16, 8);
  ReferenceExecutor a(parsed);
  ReferenceExecutor b(builtin);
  a.run(8);
  b.run(8);
  EXPECT_TRUE(a.field(0).equals_on(b.field(0), parsed.grid_box()));
}

TEST(ParserTest, MultiLineFormulaContinuation) {
  const StencilProgram p = parse_program(R"(
stencil "hs" dims 2 grid 12 12 iterations 4
field temp init constant 50
field power init constant 0.5
stage hot writes temp:
    $temp(0,0) + 0.5f * ($power(0,0)
    + ($temp(-1,0) + $temp(1,0) - 2.0f * $temp(0,0)) * 0.1f
    + ($temp(0,-1) + $temp(0,1) - 2.0f * $temp(0,0)) * 0.1f)
)");
  EXPECT_EQ(p.stage(0).reads.size(), 6u);
  EXPECT_TRUE(p.is_constant_field(1));
}

TEST(ParserTest, MultiStagePrograms) {
  const StencilProgram p = parse_program(R"(
stencil "mini-fdtd" dims 1 grid 32 iterations 4
field e init wave 0.25
field h init wave 0.5
stage upd_e writes e: $e(0) - 0.5f * ($h(0) - $h(-1))
stage upd_h writes h: $h(0) - 0.7f * ($e(1) - $e(0))
)");
  EXPECT_EQ(p.stage_count(), 2);
  EXPECT_EQ(p.stage(0).output_field, 0);
  EXPECT_EQ(p.stage(1).output_field, 1);
  EXPECT_EQ(p.delta_w(0), 2);
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  const StencilProgram p = parse_program(
      "# leading comment\n\n"
      "stencil \"x\" dims 1 grid 8 iterations 2  # trailing\n"
      "field A init constant 1   # the only field\n\n"
      "stage s writes A: $A(0) * 0.5f\n");
  EXPECT_EQ(p.name(), "x");
}

TEST(ParserTest, InitializerSpecs) {
  const Index p5{5, 0, 0};
  EXPECT_FLOAT_EQ(make_initializer("constant 2.5")(p5), 2.5f);
  // affine: fmod(3*5+2, 97)/97
  EXPECT_FLOAT_EQ(make_initializer("affine 3 0 0 2 97")(p5),
                  static_cast<float>(17.0 / 97.0));
  EXPECT_NEAR(make_initializer("wave 1.0")(p5), std::sin(0.37 * 5), 1e-6);
}

TEST(ParserTest, InitializerErrors) {
  EXPECT_THROW(make_initializer(""), Error);
  EXPECT_THROW(make_initializer("gaussian 1 2"), Error);
  EXPECT_THROW(make_initializer("constant"), Error);
  EXPECT_THROW(make_initializer("affine 1 2 3 4 0"), Error);  // div 0
  EXPECT_THROW(make_initializer("constant abc"), Error);
}

TEST(ParserTest, SyntaxErrorsCarryLineNumbers) {
  try {
    parse_program("stencil \"x\" dims 1 grid 8 iterations 2\nbogus line\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParserTest, StructuralErrors) {
  EXPECT_THROW(parse_program(""), Error);  // no header
  EXPECT_THROW(parse_program("stencil \"x\" dims 1 grid 8 iterations 2\n"),
               Error);  // no fields
  EXPECT_THROW(
      parse_program("stencil \"x\" dims 1 grid 8 iterations 2\n"
                    "field A init constant 0\n"),
      Error);  // no stages
  EXPECT_THROW(
      parse_program("stencil \"x\" dims 1 grid 8 iterations 2\n"
                    "field A init constant 0\n"
                    "stage s writes B: $A(0)\n"),
      Error);  // unknown output field
  EXPECT_THROW(
      parse_program("stencil \"x\" dims 4 grid 8 8 8 8 iterations 2\n"),
      Error);  // bad dims
  EXPECT_THROW(
      parse_program("stencil x dims 1 grid 8 iterations 2\n"),
      Error);  // unquoted name
  EXPECT_THROW(
      parse_program("stencil \"x\" dims 1 grid 8 iterations 2\n"
                    "stencil \"y\" dims 1 grid 8 iterations 2\n"),
      Error);  // duplicate header
}

TEST(ParserTest, FormulaErrorsAreReportedAtStageLine) {
  try {
    parse_program(
        "stencil \"x\" dims 1 grid 8 iterations 2\n"
        "field A init constant 0\n"
        "stage s writes A: $A(0,0)\n");  // wrong arity
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(RoundTripTest, AllBenchmarksSerializeAndReparse) {
  for (const BenchmarkInfo& info : paper_benchmarks()) {
    const StencilProgram original = info.make_scaled({12, 12, 12}, 5);
    const std::string text = program_to_text(original);
    const StencilProgram reparsed = parse_program(text);

    ASSERT_EQ(reparsed.field_count(), original.field_count()) << info.name;
    ASSERT_EQ(reparsed.stage_count(), original.stage_count()) << info.name;
    EXPECT_EQ(reparsed.iterations(), original.iterations());
    EXPECT_EQ(reparsed.grid_box(), original.grid_box());

    // Bit-exact behavioral equivalence after the round trip.
    ReferenceExecutor a(original);
    ReferenceExecutor b(reparsed);
    a.run(5);
    b.run(5);
    for (int f = 0; f < original.field_count(); ++f) {
      EXPECT_TRUE(a.field(f).equals_on(b.field(f), original.grid_box()))
          << info.name << " field " << f;
    }
  }
}

TEST(RoundTripTest, CustomInitializerCannotSerialize) {
  std::vector<Field> fields;
  Field f;
  f.name = "A";
  f.init = [](const Index&) { return 1.0f; };  // no init_spec
  fields.push_back(std::move(f));
  const StencilProgram p("custom", 1, {8, 1, 1}, 2, std::move(fields),
                         {make_stage("s", 0, "$A(0)", {"A"}, 1)});
  EXPECT_THROW(program_to_text(p), Error);
}

TEST(ParserTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/jacobi_test.stencil";
  {
    std::ofstream out(path);
    out << kJacobi;
  }
  const StencilProgram p = parse_program_file(path);
  EXPECT_EQ(p.name(), "Jacobi-2D");
  EXPECT_THROW(parse_program_file(path + ".does-not-exist"), Error);
}

}  // namespace
}  // namespace scl::stencil
