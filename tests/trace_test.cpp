#include <gtest/gtest.h>

#include "sim/executor.hpp"
#include "sim/trace.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"

namespace scl::sim {
namespace {

DesignConfig hetero_config() {
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = 4;
  c.parallelism = {2, 2, 1};
  c.tile_size = {16, 16, 1};
  c.unroll = 2;
  return c;
}

RegionTrace make_trace() {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 8);
  const Executor exec(fpga::virtex7_690t());
  return exec.trace_region(p, hetero_config());
}

TEST(TraceTest, EventsCoverAllPhases) {
  const RegionTrace trace = make_trace();
  ASSERT_FALSE(trace.events.empty());
  bool launch = false, read = false, compute = false, write = false;
  for (const TraceEvent& e : trace.events) {
    if (e.phase == "launch") launch = true;
    if (e.phase == "mem_read") read = true;
    if (starts_with(e.phase, "compute")) compute = true;
    if (e.phase == "mem_write") write = true;
  }
  EXPECT_TRUE(launch);
  EXPECT_TRUE(read);
  EXPECT_TRUE(compute);
  EXPECT_TRUE(write);
}

TEST(TraceTest, PerKernelEventsAreMonotoneAndNonOverlapping) {
  const RegionTrace trace = make_trace();
  std::map<std::string, std::int64_t> last_end;
  for (const TraceEvent& e : trace.events) {
    EXPECT_LT(e.begin, e.end) << e.phase;
    EXPECT_LE(e.end, trace.region_cycles);
    auto it = last_end.find(e.kernel);
    if (it != last_end.end()) {
      EXPECT_GE(e.begin, it->second)
          << e.kernel << " " << e.phase << " overlaps the previous event";
    }
    last_end[e.kernel] = e.end;
  }
  EXPECT_EQ(last_end.size(), 4u);  // 2x2 kernels
}

TEST(TraceTest, BusyCyclesEqualKernelClock) {
  // Every clock advance is traced, so per-kernel busy time must equal the
  // kernel's final clock (the trace is gap-free in accounting terms).
  const RegionTrace trace = make_trace();
  std::map<std::string, std::int64_t> end_clock;
  for (const TraceEvent& e : trace.events) {
    end_clock[e.kernel] = std::max(end_clock[e.kernel], e.end);
  }
  for (const auto& [kernel, clock] : end_clock) {
    EXPECT_EQ(trace.kernel_busy_cycles(kernel), clock) << kernel;
  }
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  const RegionTrace trace = make_trace();
  const std::string json = trace.to_chrome_json();
  EXPECT_TRUE(starts_with(json, "{\"traceEvents\":["));
  EXPECT_EQ(count_occurrences(json, "{\"name\":"), trace.events.size());
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), trace.events.size());
  // Balanced braces/brackets.
  std::int64_t depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceTest, CsvHasHeaderAndOneRowPerEvent) {
  const RegionTrace trace = make_trace();
  const std::string csv = trace.to_csv();
  EXPECT_EQ(count_occurrences(csv, "\n"), trace.events.size() + 1);
  EXPECT_TRUE(starts_with(csv, "kernel,phase,begin,end"));
}

TEST(TraceTest, HeteroTraceShowsPipeActivity) {
  const RegionTrace trace = make_trace();
  bool pipe_event = false;
  for (const TraceEvent& e : trace.events) {
    if (e.phase == "halo_wait" || e.phase == "pipe_send") pipe_event = true;
  }
  EXPECT_TRUE(pipe_event);
}

TEST(TraceTest, BaselineTraceHasNoPipeEvents) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 8);
  DesignConfig c = hetero_config();
  c.kind = DesignKind::kBaseline;
  const Executor exec(fpga::virtex7_690t());
  const RegionTrace trace = exec.trace_region(p, c);
  for (const TraceEvent& e : trace.events) {
    EXPECT_NE(e.phase, "halo_wait");
    EXPECT_NE(e.phase, "pipe_send");
  }
}

TEST(TraceTest, TracingDoesNotPerturbTiming) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 8);
  const DesignConfig c = hetero_config();
  const Executor exec(fpga::virtex7_690t());
  const RegionTrace trace = exec.trace_region(p, c);
  // The traced region is the most common shape; with 64/32 = 2 regions per
  // dim all at grid edges... use the run's total as a smoke cross-check:
  const SimResult run = exec.run(p, c, SimMode::kTimingOnly);
  EXPECT_GT(trace.region_cycles, 0);
  EXPECT_LE(trace.region_cycles, run.total_cycles);
}

}  // namespace
}  // namespace scl::sim
