// Tests for multi-tenant admission control (serve/admission.hpp) and the
// stencild daemon (serve/daemon.hpp).
//
// Determinism discipline: no sleep-based synchronization anywhere.
// Token buckets run on an injected fake clock; quota/overload windows are
// held open by cold synthesis that is orders of magnitude slower than the
// frame handling racing it (and the rate-limit cases do not depend on
// timing at all — the fake clock is frozen, so a bucket can never
// refill); the drain test waits on the daemon's own frame counter before
// pulling the trigger. TSan-runnable.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/wire.hpp"
#include "support/error.hpp"

namespace scl::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// AdmissionController

/// Manually advanced clock: admission decisions become pure functions of
/// the test script.
class FakeClock {
 public:
  AdmissionController::Clock fn() {
    return [this] {
      return std::chrono::steady_clock::time_point(
          std::chrono::nanoseconds(now_ns_.load()));
    };
  }
  void advance(std::chrono::nanoseconds by) { now_ns_ += by.count(); }

 private:
  std::atomic<std::int64_t> now_ns_{1};
};

TEST(AdmissionTest, GlobalDepthBoundSheds) {
  AdmissionOptions options;
  options.max_queue_depth = 2;
  AdmissionController admission(options);
  EXPECT_EQ(admission.try_admit("a"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("b"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("c"), AdmissionVerdict::kShed);
  admission.release("a");
  EXPECT_EQ(admission.try_admit("c"), AdmissionVerdict::kAdmitted);
  const AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.depth, 2);
  EXPECT_EQ(stats.max_depth, 2);
}

TEST(AdmissionTest, TenantQuotaIsolatesTenants) {
  AdmissionOptions options;
  options.default_quota.max_in_flight = 1;
  TenantQuota roomy;
  roomy.max_in_flight = 3;
  options.tenant_quotas["vip"] = roomy;
  AdmissionController admission(options);

  EXPECT_EQ(admission.try_admit("greedy"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("greedy"), AdmissionVerdict::kQuotaExceeded)
      << "second concurrent request breaches max_in_flight=1";
  // The greedy tenant's quota does not touch anyone else.
  EXPECT_EQ(admission.try_admit("bystander"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("vip"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("vip"), AdmissionVerdict::kAdmitted);

  admission.release("greedy");
  EXPECT_EQ(admission.try_admit("greedy"), AdmissionVerdict::kAdmitted)
      << "release frees the tenant slot";

  const AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.tenants.at("greedy").quota_rejected, 1);
  EXPECT_EQ(stats.tenants.at("bystander").quota_rejected, 0);
  EXPECT_EQ(stats.tenants.at("greedy").in_flight, 1);
}

TEST(AdmissionTest, TokenBucketRefillsOnTheInjectedClock) {
  FakeClock clock;
  AdmissionOptions options;
  options.default_quota.rate_per_sec = 1.0;
  options.default_quota.burst = 2.0;
  AdmissionController admission(options, clock.fn());

  // A fresh bucket holds its full burst.
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kRateLimited)
      << "burst spent, clock frozen: no refill can have happened";
  admission.release("t");
  admission.release("t");
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kRateLimited)
      << "releasing slots must not mint tokens";

  clock.advance(999ms);
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kRateLimited)
      << "0.999 tokens is not a whole token";
  clock.advance(1ms);
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kAdmitted);

  // Refill caps at burst: a long idle stretch cannot bank extra tokens.
  clock.advance(3600s);
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(admission.try_admit("t"), AdmissionVerdict::kRateLimited);

  const AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.tenants.at("t").rate_limited, 4);
}

TEST(AdmissionTest, VerdictSpellings) {
  EXPECT_STREQ(to_string(AdmissionVerdict::kAdmitted), "ok");
  EXPECT_STREQ(to_string(AdmissionVerdict::kShed), "shed");
  EXPECT_STREQ(to_string(AdmissionVerdict::kQuotaExceeded), "quota");
  EXPECT_STREQ(to_string(AdmissionVerdict::kRateLimited), "rate_limited");
}

// ---------------------------------------------------------------------------
// Daemon end-to-end over the socket

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("scl-daemon-test-" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "-" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  DaemonOptions base_options() {
    DaemonOptions options;
    options.socket_path = (root_ / "sock").string();
    options.service.store_dir = (root_ / "store").string();
    options.service.threads = 2;
    return options;
  }

  static WireRequest benchmark_request(std::int64_t id,
                                       const std::string& tenant = "default") {
    WireRequest request;
    request.id = id;
    request.tenant = tenant;
    request.benchmark = "Jacobi-2D";  // paper scale: a real cold synthesis
    return request;
  }

  /// Blocks until the daemon has ingested `frames` frames. Progress is
  /// the daemon's own counter, so this cannot pass early or hang on a
  /// healthy daemon.
  static void wait_for_frames(const Daemon& daemon, std::int64_t frames) {
    while (daemon.stats().frames < frames) std::this_thread::yield();
  }

  fs::path root_;
};

TEST_F(DaemonTest, ColdThenWarmThenMemoryWarmOverTheSocket) {
  Daemon daemon(base_options());
  daemon.start();

  WireClient client;
  client.connect(daemon.socket_path());
  client.send(benchmark_request(1));
  const WireResponse cold = client.recv();
  ASSERT_EQ(cold.status, "ok") << cold.error;
  EXPECT_EQ(cold.id, 1);
  EXPECT_EQ(cold.name, "Jacobi-2D");
  EXPECT_FALSE(cold.from_cache);
  EXPECT_FALSE(cold.key.empty());
  EXPECT_GT(cold.speedup, 0.0);

  client.send(benchmark_request(2));
  const WireResponse warm = client.recv();
  ASSERT_EQ(warm.status, "ok") << warm.error;
  EXPECT_EQ(warm.id, 2);
  EXPECT_EQ(warm.key, cold.key) << "content addressing is deterministic";
  EXPECT_TRUE(warm.from_cache);
  EXPECT_TRUE(warm.from_memory)
      << "the write-through tier serves the repeat from memory";

  client.close();
  EXPECT_TRUE(daemon.wait_drained());
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.frames, 2);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.responses, 2);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(DaemonTest, MalformedFramesGetErrorsAndTheConnectionSurvives) {
  DaemonOptions options = base_options();
  options.max_frame_bytes = 512;
  Daemon daemon(options);
  daemon.start();

  WireClient client;
  client.connect(daemon.socket_path());
  client.send_raw("this is not json\n");
  const WireResponse bad_json = client.recv();
  EXPECT_EQ(bad_json.status, "error");
  EXPECT_EQ(bad_json.id, 0) << "no parseable id answers as id 0";

  client.send_raw("{\"id\":7}\n");  // valid JSON, no discriminator
  const WireResponse no_program = client.recv();
  EXPECT_EQ(no_program.status, "error");

  client.send_raw(std::string(2048, 'x') + "\n");  // over max_frame_bytes
  const WireResponse oversized = client.recv();
  EXPECT_EQ(oversized.status, "error");

  // An admitted request whose benchmark does not exist fails cleanly and
  // releases its admission slot.
  WireRequest unknown;
  unknown.id = 8;
  unknown.benchmark = "No-Such-Benchmark";
  client.send(unknown);
  const WireResponse missing = client.recv();
  EXPECT_EQ(missing.status, "error");
  EXPECT_EQ(missing.id, 8);

  // The connection is still healthy after every abuse above.
  client.send(benchmark_request(9));
  const WireResponse ok = client.recv();
  EXPECT_EQ(ok.status, "ok") << ok.error;
  EXPECT_EQ(ok.id, 9);

  client.close();
  EXPECT_TRUE(daemon.wait_drained());
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.malformed, 3);
  EXPECT_EQ(stats.responses, 5);
  EXPECT_EQ(daemon.admission().stats().depth, 0)
      << "every admitted slot was released";
}

TEST_F(DaemonTest, FrozenClockRateLimitIsDeterministicOnTheWire) {
  // The fake clock never advances, so however fast or slow the daemon
  // machinery runs, the second request of a burst=1 tenant can never
  // find a refilled bucket.
  FakeClock clock;
  DaemonOptions options = base_options();
  options.admission.default_quota.rate_per_sec = 1.0;
  options.admission.default_quota.burst = 1.0;
  options.admission_clock = clock.fn();
  Daemon daemon(options);
  daemon.start();

  WireClient client;
  client.connect(daemon.socket_path());
  client.send(benchmark_request(1));
  client.send(benchmark_request(2));
  const WireResponse first = client.recv();
  const WireResponse second = client.recv();
  EXPECT_EQ(first.status, "ok") << first.error;
  EXPECT_EQ(second.status, "rate_limited");
  EXPECT_EQ(second.id, 2);

  client.close();
  EXPECT_TRUE(daemon.wait_drained());
  EXPECT_EQ(daemon.stats().quota_rejected, 1);
  EXPECT_EQ(daemon.admission().stats().tenants.at("default").rate_limited,
            1);
}

TEST_F(DaemonTest, OverloadShedsWithStructuredStatus) {
  // One admitted-but-unanswered slot globally. Both frames arrive in one
  // write; the reader admits #2 microseconds after #1, while #1 is still
  // a cold multi-candidate DSE (tens of milliseconds at minimum), so #2
  // deterministically finds the queue full — and nothing shed-able, since
  // #1 carries no deadline — and bounces with status "shed".
  DaemonOptions options = base_options();
  options.admission.max_queue_depth = 1;
  Daemon daemon(options);
  daemon.start();

  WireClient client;
  client.connect(daemon.socket_path());
  client.send_raw(serialize_request(benchmark_request(1)) + "\n" +
                  serialize_request(benchmark_request(2)) + "\n");
  const WireResponse first = client.recv();
  const WireResponse shed = client.recv();
  EXPECT_EQ(first.status, "ok") << first.error;
  EXPECT_EQ(shed.status, "shed");
  EXPECT_EQ(shed.id, 2);

  client.close();
  EXPECT_TRUE(daemon.wait_drained());
  EXPECT_EQ(daemon.stats().shed, 1);
}

TEST_F(DaemonTest, SigtermStyleDrainLosesNoAcceptedRequests) {
  Daemon daemon(base_options());
  daemon.start();

  constexpr int kRequests = 6;
  WireClient client;
  client.connect(daemon.socket_path());
  std::string burst;
  for (int i = 1; i <= kRequests; ++i) {
    burst += serialize_request(benchmark_request(i)) + "\n";
  }
  client.send_raw(burst);

  // Trigger the drain only once every frame is provably ingested — from
  // here on the daemon owes exactly kRequests responses.
  wait_for_frames(daemon, kRequests);
  daemon.request_stop();

  std::vector<WireResponse> responses;
  for (int i = 0; i < kRequests; ++i) responses.push_back(client.recv());
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].id, i + 1)
        << "responses come back in request order";
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].status, "ok")
        << responses[static_cast<std::size_t>(i)].error;
  }

  EXPECT_TRUE(daemon.wait_drained()) << "drain finished inside the budget";
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.frames, kRequests);
  EXPECT_EQ(stats.responses, kRequests) << "zero accepted requests lost";
  EXPECT_TRUE(stats.drained_clean);

  // A drained daemon is gone: new connections are refused.
  WireClient late;
  EXPECT_THROW(late.connect(daemon.socket_path()), Error);
}

TEST_F(DaemonTest, ConnectionCapRejectsExtraClients) {
  DaemonOptions options = base_options();
  options.max_connections = 1;
  Daemon daemon(options);
  daemon.start();

  WireClient first;
  first.connect(daemon.socket_path());
  first.send(benchmark_request(1));
  EXPECT_EQ(first.recv().status, "ok");

  // The second connect() lands in the listen backlog, then the daemon
  // accepts and immediately closes it: recv sees EOF, never a response.
  // (No send here — the daemon may close before bytes could land, and
  // the contract is EOF-before-response, not EPIPE timing.)
  WireClient second;
  second.connect(daemon.socket_path());
  EXPECT_THROW(second.recv(), Error);

  first.close();
  second.close();
  EXPECT_TRUE(daemon.wait_drained());
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.connections_accepted, 1);
  EXPECT_EQ(stats.connections_rejected, 1);
}

TEST_F(DaemonTest, StatsAndMetricsRenderTheServePipeline) {
  Daemon daemon(base_options());
  daemon.start();

  WireClient client;
  client.connect(daemon.socket_path());
  client.send(benchmark_request(1, "team-a"));
  ASSERT_EQ(client.recv().status, "ok");
  client.close();
  EXPECT_TRUE(daemon.wait_drained());

  const std::string json = daemon.render_stats_json();
  EXPECT_NE(json.find("\"daemon\""), std::string::npos);
  EXPECT_NE(json.find("\"admission\""), std::string::npos);
  EXPECT_NE(json.find("\"team-a\""), std::string::npos);
  EXPECT_NE(json.find("\"drained_clean\": true"), std::string::npos);

  const std::string metrics = daemon.render_metrics_exposition();
  EXPECT_NE(metrics.find("scl_serve_frames_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("scl_serve_admitted_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("scl_serve_tenant_admitted_total_team_a 1"),
            std::string::npos)
      << "tenant ids are sanitized into metric names";
  EXPECT_NE(metrics.find("scl_serve_store_misses"), std::string::npos)
      << "the service registry rides along in one exposition";
}

}  // namespace
}  // namespace scl::serve
