// Emission and analysis of spatially replicated designs (R > 1 on HBM
// parts): pipe-tiling replicas own distinct pipe-wired kernel texts and
// a wave-structured multi-queue host; the temporal cascade stays one
// kernel text whose R compute units are stamped at link time. Either
// way the generated bundle must clear the structural validator, the
// kernel-IR dataflow verifier and all design-analysis passes with zero
// diagnostics — the same bar the R = 1 paths are held to.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "arch/family.hpp"
#include "codegen/opencl_emitter.hpp"
#include "core/resource_estimator.hpp"
#include "core/verify.hpp"
#include "fpga/device.hpp"
#include "fpga/resource_model.hpp"
#include "sim/design.hpp"
#include "stencil/kernels.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace scl {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

DesignConfig replicated_hetero2d(int replication) {
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = 8;
  c.parallelism = {2, 2, 1};
  c.tile_size = {32, 32, 1};
  c.replication = replication;
  return c;
}

DesignConfig replicated_temporal(const StencilProgram& program,
                                 std::int64_t strip, std::int64_t t_deg,
                                 int replication) {
  DesignConfig config;
  config.family = arch::DesignFamily::kTemporalShift;
  config.kind = DesignKind::kBaseline;
  config.fused_iterations = t_deg;
  for (int d = 0; d < program.dims(); ++d) {
    config.tile_size[static_cast<std::size_t>(d)] =
        program.grid_box().extent(d);
  }
  config.tile_size[static_cast<std::size_t>(program.dims() - 1)] = strip;
  config.replication = replication;
  config.validate(program);
  return config;
}

/// Full-stack cleanliness: structural validator (SCL0xx), all design
/// passes including the resource cross-check (SCL1xx-SCL3xx), and the
/// kernel-IR dataflow verifier (SCL4xx), each with zero errors AND zero
/// warnings on the HBM part.
void expect_clean_replicated(const StencilProgram& program,
                             const DesignConfig& config,
                             const std::string& label) {
  const fpga::DeviceSpec device = fpga::find_device("xcu280");
  const codegen::GeneratedCode code =
      codegen::generate_opencl(program, config, device);

  support::DiagnosticEngine diags;
  core::verify_generated_sources(code, &diags);
  EXPECT_EQ(diags.error_count(), 0)
      << label << "\n" << diags.render_text() << code.host_source;
  EXPECT_EQ(diags.warning_count(), 0) << label << "\n" << diags.render_text();

  const core::IrVerifyStats stats =
      core::verify_generated_ir(program, config, code, &diags);
  EXPECT_TRUE(stats.ran) << label;
  EXPECT_EQ(stats.kernels_lowered, code.kernel_count) << label;
  EXPECT_EQ(stats.unmodeled_constructs, 0) << label;
  EXPECT_EQ(stats.errors, 0)
      << label << "\n" << diags.render_text() << code.kernel_source;
  EXPECT_EQ(stats.warnings, 0)
      << label << "\n" << diags.render_text() << code.kernel_source;

  const fpga::ResourceModel model(device);
  const core::DesignResources resources =
      core::estimate_design_resources(program, config, model);
  const support::DiagnosticEngine design_diags =
      core::verify_design(program, config, device, resources);
  EXPECT_EQ(design_diags.error_count(), 0)
      << label << "\n" << design_diags.render_text();
  EXPECT_EQ(design_diags.warning_count(), 0)
      << label << "\n" << design_diags.render_text();
}

TEST(ReplicationCodegen, PipeTilingReplicasOwnDistinctKernelTexts) {
  const auto program = stencil::make_jacobi2d(256, 256, 64);
  const DesignConfig config = replicated_hetero2d(2);
  const codegen::GeneratedCode code = codegen::generate_opencl(
      program, config, fpga::find_device("xcu280"));
  // 2x2 tiles per replica, two replicas: 8 distinct kernel functions.
  EXPECT_EQ(code.kernel_count, 8);
  EXPECT_EQ(scl::count_occurrences(code.kernel_source, "__kernel "), 8u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_NE(code.kernel_source.find(scl::str_cat("stencil_k", k, "(")),
              std::string::npos)
        << "missing kernel text for compute unit " << k;
  }
  // Pipes wire tiles within a replica only: 8 per 2x2 replica, and no
  // cross-replica channel (which would serialize the bank groups).
  EXPECT_EQ(code.pipe_count, 16);
  // The build script stamps every replicated kernel as its own CU.
  EXPECT_NE(code.build_script.find("--nk stencil_k7:1"), std::string::npos);
}

TEST(ReplicationCodegen, ReplicatedHostSweepsStripWaves) {
  const auto program = stencil::make_jacobi2d(256, 256, 64);
  const codegen::GeneratedCode code = codegen::generate_opencl(
      program, replicated_hetero2d(2), fpga::find_device("xcu280"));
  const std::string& host = code.host_source;
  // One command queue and one clCreateKernel per compute unit; the
  // sweep advances in waves with a per-wave barrier over every queue.
  EXPECT_NE(host.find("static const int kReplicas = 2"), std::string::npos);
  EXPECT_NE(host.find("kStripWaves"), std::string::npos);
  EXPECT_NE(host.find("cl_command_queue queues[kReplicas]"),
            std::string::npos);
  EXPECT_EQ(scl::count_occurrences(host, "clCreateKernel"), 8u);
  EXPECT_NE(host.find("clEnqueueTask(queues[0]"), std::string::npos);
  EXPECT_NE(host.find("clEnqueueTask(queues[1]"), std::string::npos);
  EXPECT_NE(host.find("clFinish(queues[q])"), std::string::npos);
}

TEST(ReplicationCodegen, SingleReplicaHostKeepsTheLegacyPath) {
  // R = 1 must not pay for the machinery: byte-for-byte the same host
  // as a config that never heard of replication.
  const auto program = stencil::make_jacobi2d(256, 256, 64);
  const codegen::GeneratedCode replicated = codegen::generate_opencl(
      program, replicated_hetero2d(1), fpga::find_device("xcu280"));
  EXPECT_EQ(replicated.host_source.find("kReplicas"), std::string::npos);
  EXPECT_EQ(replicated.host_source.find("queues["), std::string::npos);
  const codegen::GeneratedCode plain = codegen::generate_opencl(
      program, replicated_hetero2d(1), fpga::find_device("xc7vx690t"));
  EXPECT_EQ(scl::count_occurrences(plain.host_source, "clCreateKernel"),
            scl::count_occurrences(replicated.host_source, "clCreateKernel"));
}

TEST(ReplicationCodegen, TemporalReplicasAreLinkTimeComputeUnits) {
  const auto program =
      stencil::find_benchmark("Jacobi-2D").make_scaled({64, 64, 1}, 8);
  const DesignConfig config = replicated_temporal(program, 16, 4, 4);
  const codegen::GeneratedCode code = codegen::generate_opencl(
      program, config, fpga::find_device("xcu280"));
  // One cascade text; the SDAccel link stamps the four compute units.
  EXPECT_EQ(code.kernel_count, 1);
  EXPECT_EQ(scl::count_occurrences(code.kernel_source, "__kernel "), 1u);
  EXPECT_NE(code.build_script.find("--nk stencil_k0:4"), std::string::npos);
  // Every replica's cl_kernel binds the same function name.
  EXPECT_EQ(scl::count_occurrences(code.host_source, "clCreateKernel"), 4u);
  EXPECT_EQ(scl::count_occurrences(code.host_source, "\"stencil_k0\""), 4u);
  EXPECT_NE(code.host_source.find("static const int kReplicas = 4"),
            std::string::npos);
}

TEST(ReplicationCodegen, ReplicatedPipeTilingIsDiagnosticFree) {
  const auto program = stencil::make_jacobi2d(256, 256, 64);
  expect_clean_replicated(program, replicated_hetero2d(2),
                          "Jacobi-2D hetero R=2");
  DesignConfig baseline = replicated_hetero2d(4);
  baseline.kind = DesignKind::kBaseline;
  expect_clean_replicated(program, baseline, "Jacobi-2D baseline R=4");
}

TEST(ReplicationCodegen, ReplicatedTemporalCascadeIsDiagnosticFree) {
  const auto program =
      stencil::find_benchmark("Jacobi-2D").make_scaled({96, 96, 1}, 12);
  expect_clean_replicated(program, replicated_temporal(program, 24, 3, 4),
                          "Jacobi-2D temporal R=4");
  // Multi-field, multi-stage stencil with an unaligned strip count.
  const auto fdtd =
      stencil::find_benchmark("FDTD-2D").make_scaled({64, 64, 1}, 8);
  expect_clean_replicated(fdtd, replicated_temporal(fdtd, 16, 2, 2),
                          "FDTD-2D temporal R=2");
}

}  // namespace
}  // namespace scl
