#include <gtest/gtest.h>

#include "core/report.hpp"
#include "stencil/kernels.hpp"

namespace scl::core {
namespace {

TEST(ReportTest, MarkdownContainsAllSections) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const Framework fw(p, FrameworkOptions{});
  const SynthesisReport rep = fw.synthesize();
  const std::string md = render_markdown_report(rep);
  EXPECT_NE(md.find("# stencilcl synthesis report — Jacobi-2D"),
            std::string::npos);
  EXPECT_NE(md.find("## Latency"), std::string::npos);
  EXPECT_NE(md.find("## Resources"), std::string::npos);
  EXPECT_NE(md.find("## Execution-phase breakdown (baseline)"),
            std::string::npos);
  EXPECT_NE(md.find("## Generated code"), std::string::npos);
  EXPECT_NE(md.find("Simulated speedup"), std::string::npos);
  EXPECT_NE(md.find("Effective throughput"), std::string::npos);
  EXPECT_NE(md.find("Estimated energy"), std::string::npos);
  // Markdown tables render.
  EXPECT_NE(md.find("| design | FF | LUT | DSP | BRAM18 |"),
            std::string::npos);
}

TEST(ReportTest, SkipsSimSectionsWhenSimulationDisabled) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  FrameworkOptions opts;
  opts.simulate = false;
  opts.generate_code = false;
  const Framework fw(p, opts);
  const std::string md = render_markdown_report(fw.synthesize());
  EXPECT_EQ(md.find("Execution-phase breakdown"), std::string::npos);
  EXPECT_EQ(md.find("## Generated code"), std::string::npos);
  EXPECT_NE(md.find("## Resources"), std::string::npos);
}

}  // namespace
}  // namespace scl::core
