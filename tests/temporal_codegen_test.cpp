// End-to-end cleanliness of the temporal-shift codegen path: for every
// paper benchmark, the emitted cascade kernel must pass the structural
// validator (SCL0xx), all three design-analysis passes including the
// resource cross-check (SCL1xx-SCL3xx), and the kernel-IR dataflow
// verifier (SCL4xx) with zero errors AND zero warnings — the same bar
// scripts/analyzer_clean.sh holds the pipe-tiling family to.
#include <array>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "arch/family.hpp"
#include "codegen/opencl_emitter.hpp"
#include "core/resource_estimator.hpp"
#include "core/verify.hpp"
#include "fpga/device.hpp"
#include "fpga/resource_model.hpp"
#include "sim/design.hpp"
#include "stencil/kernels.hpp"
#include "support/diagnostics.hpp"

namespace scl {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

DesignConfig temporal_config(const StencilProgram& program, std::int64_t strip,
                             std::int64_t t_deg, int v) {
  DesignConfig config;
  config.family = arch::DesignFamily::kTemporalShift;
  config.kind = DesignKind::kBaseline;
  config.fused_iterations = t_deg;
  config.unroll = v;
  for (int d = 0; d < program.dims(); ++d) {
    config.tile_size[static_cast<std::size_t>(d)] =
        program.grid_box().extent(d);
  }
  config.tile_size[static_cast<std::size_t>(program.dims() - 1)] = strip;
  config.validate(program);
  return config;
}

/// Generates, validates and IR-verifies one temporal design; fails the
/// test on any diagnostic of any severity.
void expect_clean_temporal(const StencilProgram& program,
                           const DesignConfig& config,
                           const std::string& label) {
  const fpga::DeviceSpec device = fpga::find_device("xc7vx690t");
  const codegen::GeneratedCode code =
      codegen::generate_opencl(program, config, device);
  EXPECT_EQ(code.kernel_count, 1) << label;
  EXPECT_EQ(code.pipe_count, 0) << label;
  EXPECT_NE(code.kernel_source.find("stencil_k0"), std::string::npos) << label;

  support::DiagnosticEngine diags;
  core::verify_generated_sources(code, &diags);
  EXPECT_EQ(diags.error_count(), 0)
      << label << "\n" << diags.render_text() << code.kernel_source;
  EXPECT_EQ(diags.warning_count(), 0)
      << label << "\n" << diags.render_text();

  const core::IrVerifyStats stats =
      core::verify_generated_ir(program, config, code, &diags);
  EXPECT_TRUE(stats.ran) << label;
  EXPECT_EQ(stats.kernels_lowered, 1) << label;
  EXPECT_EQ(stats.unmodeled_constructs, 0) << label;
  EXPECT_EQ(stats.errors, 0)
      << label << "\n" << diags.render_text() << code.kernel_source;
  EXPECT_EQ(stats.warnings, 0)
      << label << "\n" << diags.render_text() << code.kernel_source;

  const fpga::ResourceModel model(device);
  const core::DesignResources resources =
      core::estimate_design_resources(program, config, model);
  const support::DiagnosticEngine design_diags =
      core::verify_design(program, config, device, resources);
  EXPECT_EQ(design_diags.error_count(), 0)
      << label << "\n" << design_diags.render_text();
  EXPECT_EQ(design_diags.warning_count(), 0)
      << label << "\n" << design_diags.render_text();
}

struct SuiteCase {
  const char* name;
  std::array<std::int64_t, 3> extents;
  std::int64_t iters;
  std::int64_t strip;
  std::int64_t t_deg;
  int v;
};

TEST(TemporalCodegen, SevenBenchmarkSuiteIsDiagnosticFree) {
  const SuiteCase cases[] = {
      {"Jacobi-1D", {4096, 1, 1}, 8, 512, 4, 1},
      {"Jacobi-2D", {64, 64, 1}, 8, 16, 4, 1},
      {"Jacobi-3D", {16, 16, 16}, 8, 8, 4, 1},
      {"HotSpot-2D", {64, 64, 1}, 8, 16, 4, 1},
      {"HotSpot-3D", {16, 16, 16}, 8, 8, 4, 1},
      {"FDTD-2D", {64, 64, 1}, 8, 16, 4, 1},
      {"FDTD-3D", {16, 16, 16}, 8, 8, 4, 1},
  };
  for (const SuiteCase& c : cases) {
    const StencilProgram program =
        stencil::find_benchmark(c.name).make_scaled(c.extents, c.iters);
    const DesignConfig config =
        temporal_config(program, c.strip, c.t_deg, c.v);
    expect_clean_temporal(program, config, c.name);
  }
}

TEST(TemporalCodegen, VectorizedAndUnalignedStripsStayClean) {
  // V > 1 and a strip width that does not divide the grid extent: the
  // last strip of the host sweep clips, so the store clamps and the
  // analyzer's last-region environment must both stay in bounds.
  const StencilProgram program =
      stencil::find_benchmark("Jacobi-2D").make_scaled({96, 96, 1}, 12);
  expect_clean_temporal(program, temporal_config(program, 40, 3, 2),
                        "Jacobi-2D V=2 strip=40");
  expect_clean_temporal(program, temporal_config(program, 96, 6, 4),
                        "Jacobi-2D full-width strip");
}

TEST(TemporalCodegen, KernelSourceHasNoPipesAndDeclaresRegisters) {
  const StencilProgram program =
      stencil::find_benchmark("Jacobi-2D").make_scaled({64, 64, 1}, 8);
  const DesignConfig config = temporal_config(program, 16, 4, 1);
  const codegen::GeneratedCode code = codegen::generate_opencl(
      program, config, fpga::find_device("xc7vx690t"));
  EXPECT_EQ(code.kernel_source.find("pipe "), std::string::npos);
  EXPECT_NE(code.kernel_source.find("__local float sr_"), std::string::npos);
  EXPECT_NE(code.kernel_source.find("temporal-blocked"), std::string::npos);
  // Host and build script ride the shared single-kernel path.
  EXPECT_NE(code.host_source.find("stencil_k0"), std::string::npos);
  EXPECT_NE(code.build_script.find("stencil_k0:1"), std::string::npos);
}

}  // namespace
}  // namespace scl
