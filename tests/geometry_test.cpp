#include <gtest/gtest.h>

#include "stencil/geometry.hpp"

namespace scl::stencil {
namespace {

Box box2d(std::int64_t lo0, std::int64_t hi0, std::int64_t lo1,
          std::int64_t hi1) {
  Box b;
  b.lo = {lo0, lo1, 0};
  b.hi = {hi0, hi1, 1};
  return b;
}

TEST(BoxTest, FromExtentsPadsUnusedDims) {
  const Box b = Box::from_extents(2, {8, 4, 999});
  EXPECT_EQ(b.lo, (Index{0, 0, 0}));
  EXPECT_EQ(b.hi, (Index{8, 4, 1}));
  EXPECT_EQ(b.volume(), 32);
}

TEST(BoxTest, FromExtentsValidation) {
  EXPECT_THROW(Box::from_extents(0, {1, 1, 1}), ContractError);
  EXPECT_THROW(Box::from_extents(4, {1, 1, 1}), ContractError);
  EXPECT_THROW(Box::from_extents(2, {0, 4, 1}), ContractError);
}

TEST(BoxTest, EmptyAndVolume) {
  EXPECT_TRUE(Box{}.empty());
  EXPECT_EQ(Box{}.volume(), 0);
  const Box b = box2d(2, 2, 0, 5);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.volume(), 0);
  EXPECT_FALSE(box2d(0, 1, 0, 1).empty());
}

TEST(BoxTest, Extent) {
  const Box b = box2d(1, 5, 2, 3);
  EXPECT_EQ(b.extent(0), 4);
  EXPECT_EQ(b.extent(1), 1);
  EXPECT_EQ(b.extent(2), 1);
}

TEST(BoxTest, ContainsIndex) {
  const Box b = box2d(1, 4, 1, 4);
  EXPECT_TRUE(b.contains(Index{1, 1, 0}));
  EXPECT_TRUE(b.contains(Index{3, 3, 0}));
  EXPECT_FALSE(b.contains(Index{4, 1, 0}));
  EXPECT_FALSE(b.contains(Index{0, 1, 0}));
}

TEST(BoxTest, ContainsBox) {
  const Box outer = box2d(0, 10, 0, 10);
  EXPECT_TRUE(outer.contains(box2d(2, 5, 3, 7)));
  EXPECT_TRUE(outer.contains(Box{}));  // empty boxes are inside anything
  EXPECT_FALSE(outer.contains(box2d(5, 11, 0, 1)));
}

TEST(BoxTest, Intersect) {
  const Box a = box2d(0, 6, 0, 6);
  const Box b = box2d(4, 9, 3, 5);
  const Box i = a.intersect(b);
  EXPECT_EQ(i, box2d(4, 6, 3, 5));
  EXPECT_TRUE(a.intersect(box2d(7, 9, 0, 1)).empty());
}

TEST(BoxTest, GrownFace) {
  const Box b = box2d(2, 4, 2, 4);
  EXPECT_EQ(b.grown(Face{0, -1}, 2), box2d(0, 4, 2, 4));
  EXPECT_EQ(b.grown(Face{1, +1}, 3), box2d(2, 4, 2, 7));
  EXPECT_EQ(b.grown(Face{0, -1}, -1), box2d(3, 4, 2, 4));  // negative shrinks
}

TEST(BoxTest, GrownAllRespectsDims) {
  const Box b = box2d(2, 4, 2, 4);
  const Box g = b.grown_all(2, 1);
  EXPECT_EQ(g, box2d(1, 5, 1, 5));
  EXPECT_EQ(g.lo[2], b.lo[2]);  // third dim untouched for dims=2
  EXPECT_EQ(g.hi[2], b.hi[2]);
}

TEST(BoxTest, ShiftedBack) {
  const Box b = box2d(2, 6, 2, 6);
  // Cells x where x + (-1,0) stays in b: x in [3,7).
  EXPECT_EQ(b.shifted_back(Offset{-1, 0, 0}), box2d(3, 7, 2, 6));
  EXPECT_EQ(b.shifted_back(Offset{0, 2, 0}), box2d(2, 6, 0, 4));
}

TEST(BoxTest, BoundaryStrip) {
  const Box b = box2d(2, 8, 2, 8);
  EXPECT_EQ(b.boundary_strip(Face{0, -1}, 2), box2d(2, 4, 2, 8));
  EXPECT_EQ(b.boundary_strip(Face{0, +1}, 1), box2d(7, 8, 2, 8));
  EXPECT_EQ(b.boundary_strip(Face{1, +1}, 3), box2d(2, 8, 5, 8));
}

TEST(BoxTest, BoundaryStripWiderThanBoxIsWholeBox) {
  const Box b = box2d(2, 4, 2, 8);
  EXPECT_EQ(b.boundary_strip(Face{0, -1}, 10), b);
}

TEST(BoxTest, HaloStrip) {
  const Box b = box2d(2, 8, 2, 8);
  EXPECT_EQ(b.halo_strip(Face{0, -1}, 2), box2d(0, 2, 2, 8));
  EXPECT_EQ(b.halo_strip(Face{1, +1}, 1), box2d(2, 8, 8, 9));
}

TEST(BoxTest, LinearIndexRowMajor) {
  const Box b = Box::from_extents(2, {3, 4, 1});
  EXPECT_EQ(linear_index(b, Index{0, 0, 0}), 0);
  EXPECT_EQ(linear_index(b, Index{0, 3, 0}), 3);
  EXPECT_EQ(linear_index(b, Index{1, 0, 0}), 4);
  EXPECT_EQ(linear_index(b, Index{2, 3, 0}), 11);
}

TEST(BoxTest, ForEachCellVisitsAllOnce) {
  const Box b = Box::from_extents(3, {2, 3, 2});
  std::vector<Index> seen;
  for_each_cell(b, [&](const Index& p) { seen.push_back(p); });
  EXPECT_EQ(seen.size(), 12u);
  // Row-major order and uniqueness.
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(linear_index(b, seen[i]), static_cast<std::int64_t>(i));
  }
}

TEST(BoxTest, ForEachCellEmptyBoxVisitsNothing) {
  int count = 0;
  for_each_cell(Box{}, [&](const Index&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(FaceTest, AllFacesEnumeration) {
  const auto faces = all_faces();
  EXPECT_EQ(faces.size(), 6u);
  EXPECT_EQ(faces[0], (Face{0, -1}));
  EXPECT_EQ(faces[5], (Face{2, +1}));
}

TEST(OffsetTest, OffsetIndex) {
  EXPECT_EQ(offset_index(Index{3, 4, 5}, Offset{-1, 0, 2}),
            (Index{2, 4, 7}));
}

TEST(BoxTest, ToStringIsReadable) {
  EXPECT_EQ(box2d(0, 2, 1, 3).to_string(), "[0,2)x[1,3)x[0,1)");
}

}  // namespace
}  // namespace scl::stencil
