#include "support/observability/metrics.hpp"
#include "support/observability/span_tracer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace scl::support::obs {
namespace {

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAcrossShards) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("events_total");
  counter.increment();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(MetricsTest, ConcurrentCounterIncrementsAreNotLost) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("contended_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("depth");
  gauge.set(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
  gauge.add(-2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.5);
}

// ---------------------------------------------------------------------------
// Histogram bucket and percentile math
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketsFollowLeSemantics) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {10.0, 20.0, 30.0});
  histogram.observe(10.0);  // exactly on a bound lands in that bucket
  histogram.observe(10.5);
  histogram.observe(31.0);  // past every bound: +Inf overflow
  const Histogram::Snapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 0);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 51.5);
}

TEST(MetricsTest, PercentileInterpolatesInsideTheBucket) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {10.0, 20.0, 30.0});
  for (int i = 0; i < 4; ++i) histogram.observe(5.0);
  for (int i = 0; i < 4; ++i) histogram.observe(15.0);
  for (int i = 0; i < 2; ++i) histogram.observe(25.0);
  // p50: rank 5 of 10 is the 1st of 4 observations in (10, 20].
  EXPECT_DOUBLE_EQ(histogram.percentile(0.50), 12.5);
  // p95: rank 10 is the last observation of the (20, 30] bucket.
  EXPECT_DOUBLE_EQ(histogram.percentile(0.95), 30.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(0.0), 2.5);
}

TEST(MetricsTest, PercentileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {1.0});
  EXPECT_DOUBLE_EQ(histogram.percentile(0.5), 0.0);
}

TEST(MetricsTest, PercentileInOverflowClampsToLastBound) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {1.0, 2.0});
  histogram.observe(50.0);
  histogram.observe(60.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(0.99), 2.0);
}

TEST(MetricsTest, ConcurrentObservationsAreNotLost) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.observe(1.0);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(MetricsTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter& first = registry.counter("hits_total", "first help wins");
  Counter& second = registry.counter("hits_total", "ignored");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(MetricsTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("value");
  EXPECT_THROW(registry.gauge("value"), Error);
  EXPECT_THROW(registry.histogram("value", {1.0}), Error);
}

TEST(MetricsTest, InvalidNamesAndBoundsThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), Error);
  EXPECT_THROW(registry.counter("9starts_with_digit"), Error);
  EXPECT_THROW(registry.counter("has space"), Error);
  EXPECT_THROW(registry.histogram("h", {}), Error);
  EXPECT_THROW(registry.histogram("h", {2.0, 1.0}), Error);
  EXPECT_THROW(registry.histogram("h", {1.0, 1.0}), Error);
}

TEST(MetricsTest, ExpositionGolden) {
  MetricsRegistry registry;
  registry.counter("requests_total", "jobs accepted").add(3);
  Histogram& histogram =
      registry.histogram("lat_ms", {1.0, 2.0}, "turnaround");
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(9.0);
  const std::string expected =
      "# HELP lat_ms turnaround\n"
      "# TYPE lat_ms histogram\n"
      "lat_ms_bucket{le=\"1\"} 1\n"
      "lat_ms_bucket{le=\"2\"} 2\n"
      "lat_ms_bucket{le=\"+Inf\"} 3\n"
      "lat_ms_sum 11\n"
      "lat_ms_count 3\n"
      "# HELP requests_total jobs accepted\n"
      "# TYPE requests_total counter\n"
      "requests_total 3\n";
  EXPECT_EQ(registry.render_exposition(), expected);
}

TEST(MetricsTest, ExpositionRendersNonIntegerValues) {
  MetricsRegistry registry;
  registry.gauge("ratio").set(0.25);
  EXPECT_EQ(registry.render_exposition(),
            "# TYPE ratio gauge\nratio 0.25\n");
}

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

TEST(SpanTracerTest, DisabledTracerRecordsNothing) {
  SpanTracer tracer;
  { const auto scope = tracer.span("ignored", "test"); }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(SpanTracerTest, NestedScopesRecordParentAndDepth) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  {
    const auto outer = tracer.span("outer", "test");
    {
      const auto inner = tracer.span("inner", "test");
    }
    const auto sibling = tracer.span("sibling", "test");
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Spans land in completion order: inner, sibling, outer.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "sibling");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[2].depth, 0);
  EXPECT_EQ(spans[0].parent_id, spans[2].id);
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].depth, 1);
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.end_ns, span.begin_ns);
  }
}

TEST(SpanTracerTest, IndependentTracersNestIndependently) {
  SpanTracer a;
  SpanTracer b;
  a.set_enabled(true);
  b.set_enabled(true);
  {
    const auto outer = a.span("a_outer", "test");
    const auto other = b.span("b_root", "test");
  }
  const std::vector<SpanRecord> b_spans = b.snapshot();
  ASSERT_EQ(b_spans.size(), 1u);
  EXPECT_EQ(b_spans[0].parent_id, 0u);  // a's open span is not b's parent
  EXPECT_EQ(b_spans[0].depth, 0);
}

TEST(SpanTracerTest, MovedScopeRecordsExactlyOnce) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  {
    auto scope = tracer.span("moved", "test");
    const auto stolen = std::move(scope);
  }
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(SpanTracerTest, RingOverflowKeepsNewestAndCountsDropped) {
  SpanTracer tracer(3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    SpanRecord record;
    record.name = "s" + std::to_string(i);
    record.id = i;
    tracer.record(std::move(record));
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, 3u);
  EXPECT_EQ(spans[1].id, 4u);
  EXPECT_EQ(spans[2].id, 5u);
}

TEST(SpanTracerTest, ConcurrentSpansAllLand) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto scope = tracer.span("work", "test");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(SpanTracerTest, ClearResetsRingAndIds) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  { const auto scope = tracer.span("before", "test"); }
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0);
  { const auto scope = tracer.span("after", "test"); }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, 1u);  // id counter restarted
}

TEST(SpanTracerTest, ChromeJsonGolden) {
  SpanTracer tracer;
  SpanRecord record;
  record.name = "parse";
  record.category = "frontend";
  record.begin_ns = 1500;
  record.end_ns = 3500;
  record.id = 1;
  record.parent_id = 0;
  record.depth = 0;
  record.thread_index = 0;
  tracer.record(std::move(record));
  const std::string expected =
      "{\"traceEvents\":[{\"name\":\"parse\",\"cat\":\"frontend\","
      "\"ph\":\"X\",\"ts\":1.500,\"dur\":2.000,\"pid\":1,\"tid\":0,"
      "\"args\":{\"id\":1,\"parent\":0,\"depth\":0}}],"
      "\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(tracer.render_chrome_json(), expected);
}

TEST(SpanTracerTest, EmptyTraceIsStillValidChromeJson) {
  SpanTracer tracer;
  EXPECT_EQ(tracer.render_chrome_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

}  // namespace
}  // namespace scl::support::obs
