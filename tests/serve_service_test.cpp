// End-to-end tests of the batched synthesis service (serve/service.hpp):
// store round trips across service instances, corruption recovery,
// request coalescing, and payload determinism.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/serialize.hpp"
#include "stencil/kernels.hpp"
#include "stencil/parser.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/observability/observability.hpp"

namespace scl::serve {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const stencil::StencilProgram> small_program(
    const std::string& benchmark = "Jacobi-2D",
    std::array<std::int64_t, 3> extents = {64, 64, 1},
    std::int64_t iterations = 8) {
  return std::make_shared<stencil::StencilProgram>(
      stencil::find_benchmark(benchmark).make_scaled(extents, iterations));
}

std::map<std::string, std::string> slurp_dir(const fs::path& root) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    files[entry.path().filename().string()] = body.str();
  }
  return files;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("scl-service-test-" + std::string(::testing::UnitTest::
                                                   GetInstance()
                                                       ->current_test_info()
                                                       ->name()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  ServiceOptions options_with_store(int threads = 2) {
    ServiceOptions options;
    options.store_dir = (root_ / "store").string();
    options.threads = threads;
    return options;
  }

  fs::path root_;
};

TEST_F(ServiceTest, ColdThenWarmServesFromStore) {
  JobRequest request;
  request.program = small_program();

  std::string cold_key;
  std::int64_t cold_cycles = 0;
  {
    SynthesisService service(options_with_store());
    const JobResult cold = service.wait(service.submit(request));
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.from_cache);
    ASSERT_EQ(cold.key.size(), 32u);
    cold_key = cold.key;
    cold_cycles = cold.artifact->heterogeneous_cycles;
    EXPECT_GT(cold.artifact->speedup, 0.0);
    EXPECT_FALSE(cold.artifact->code.kernel_source.empty());
    EXPECT_EQ(service.stats().synthesized, 1);
  }
  // A brand-new service over the same directory — the "second process" —
  // serves the identical result warm.
  {
    SynthesisService service(options_with_store());
    const JobResult warm = service.wait(service.submit(request));
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.from_cache);
    EXPECT_EQ(warm.key, cold_key);
    EXPECT_EQ(warm.artifact->heterogeneous_cycles, cold_cycles);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.synthesized, 0);
    EXPECT_EQ(stats.store_hits, 1);
  }
}

TEST_F(ServiceTest, RestartedServiceAnswersFirstRequestFromMemory) {
  JobRequest request;
  request.program = small_program();
  {
    SynthesisService service(options_with_store());
    ASSERT_TRUE(service.wait(service.submit(request)).ok);
  }
  // The restarted service preloads its hot tier from the store's
  // most-recently-used artifacts, so even the FIRST request after the
  // restart is a memory hit — no disk read on the serving path.
  SynthesisService restarted(options_with_store());
  const JobResult warm = restarted.wait(restarted.submit(request));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.from_cache);
  EXPECT_TRUE(warm.from_memory)
      << "hot-tier warmup must preload the artifact at startup";
  EXPECT_TRUE(warm.artifact->served_from_memory);

  // Opting out restores the cold-memory restart behavior.
  ServiceOptions cold_options = options_with_store();
  cold_options.warm_memory_cache = false;
  SynthesisService cold_restart(std::move(cold_options));
  const JobResult disk = cold_restart.wait(cold_restart.submit(request));
  ASSERT_TRUE(disk.ok) << disk.error;
  EXPECT_TRUE(disk.from_cache);
  EXPECT_FALSE(disk.from_memory);
}

TEST_F(ServiceTest, WarmArtifactRoundTripsEveryField) {
  JobRequest request;
  request.program = small_program();
  SynthesisService service(options_with_store());
  const JobResult cold = service.wait(service.submit(request));
  ASSERT_TRUE(cold.ok) << cold.error;
  const JobResult warm = service.wait(service.submit(request));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.from_cache);

  const SynthesisArtifact& a = *cold.artifact;
  const SynthesisArtifact& b = *warm.artifact;
  EXPECT_EQ(a.program_name, b.program_name);
  EXPECT_EQ(a.device_name, b.device_name);
  EXPECT_EQ(a.baseline.config.key(), b.baseline.config.key());
  EXPECT_EQ(a.heterogeneous.config.key(), b.heterogeneous.config.key());
  EXPECT_EQ(a.baseline_cycles, b.baseline_cycles);
  EXPECT_EQ(a.heterogeneous_cycles, b.heterogeneous_cycles);
  EXPECT_EQ(a.baseline_ms, b.baseline_ms);
  EXPECT_EQ(a.heterogeneous_ms, b.heterogeneous_ms);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.code.kernel_source, b.code.kernel_source);
  EXPECT_EQ(a.code.host_source, b.code.host_source);
  EXPECT_EQ(a.code.build_script, b.code.build_script);
  EXPECT_EQ(a.markdown_report, b.markdown_report);
  EXPECT_EQ(a.analysis.render_json(), b.analysis.render_json());
  // The round trip is exact: re-serializing the warm artifact gives the
  // stored payload back byte for byte.
  EXPECT_EQ(serialize_artifact(a), serialize_artifact(b));
}

TEST_F(ServiceTest, CorruptedArtifactIsRecomputedNotFatal) {
  JobRequest request;
  request.program = small_program();
  std::string key;
  {
    SynthesisService service(options_with_store());
    const JobResult cold = service.wait(service.submit(request));
    ASSERT_TRUE(cold.ok) << cold.error;
    key = cold.key;
  }
  // Corrupt every stored byte stream in place.
  const fs::path store_dir = root_ / "store";
  for (const auto& entry : fs::recursive_directory_iterator(store_dir)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream out(entry.path(),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }

  SynthesisService service(options_with_store());
  const JobResult recovered = service.wait(service.submit(request));
  ASSERT_TRUE(recovered.ok) << recovered.error;
  EXPECT_FALSE(recovered.from_cache) << "corrupt artifact must recompute";
  EXPECT_EQ(recovered.key, key);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.synthesized, 1);
  EXPECT_EQ(stats.corrupt_recovered, 1);

  // And the recomputed artifact is back on disk, loadable.
  const JobResult warm = service.wait(service.submit(request));
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.from_cache);
}

TEST_F(ServiceTest, IdenticalConcurrentRequestsCoalesce) {
  // No store: every non-coalesced request would synthesize, so the
  // synthesized counter exposes coalescing directly. The batch is
  // submitted in one burst (microseconds) against a synthesis that takes
  // milliseconds, so all twins find the first request in flight.
  ServiceOptions options;
  options.threads = 4;
  SynthesisService service(options);

  JobRequest request;
  request.program = small_program("Jacobi-3D", {32, 32, 32}, 4);
  const std::vector<JobRequest> batch(8, request);
  const std::vector<JobResult> results = service.run_batch(batch);

  std::int64_t coalesced = 0;
  for (const JobResult& result : results) {
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.artifact->heterogeneous_cycles,
              results[0].artifact->heterogeneous_cycles);
    coalesced += result.coalesced ? 1 : 0;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_EQ(stats.synthesized, 1) << "8 identical requests, 1 synthesis";
  EXPECT_EQ(stats.coalesced, 7);
  EXPECT_EQ(coalesced, 7);
}

TEST_F(ServiceTest, ParallelBatchOfDistinctJobsSynthesizesAll) {
  // Regression: synthesis runs inside foreign-pool workers whose
  // worker_slot() exceeds the per-job engine's model count — this crashed
  // before EvaluationEngine folded the slot into range.
  SynthesisService service(options_with_store(/*threads=*/4));
  std::vector<JobRequest> batch;
  for (const auto& [name, extents, iters] :
       {std::tuple{"Jacobi-2D", std::array<std::int64_t, 3>{64, 64, 1},
                   std::int64_t{8}},
        std::tuple{"HotSpot-2D", std::array<std::int64_t, 3>{64, 64, 1},
                   std::int64_t{8}},
        std::tuple{"FDTD-2D", std::array<std::int64_t, 3>{64, 64, 1},
                   std::int64_t{8}},
        std::tuple{"Jacobi-3D", std::array<std::int64_t, 3>{32, 32, 32},
                   std::int64_t{4}}}) {
    JobRequest request;
    request.name = name;
    request.program = small_program(name, extents, iters);
    batch.push_back(std::move(request));
  }
  const std::vector<JobResult> results = service.run_batch(batch);
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& result : results) {
    EXPECT_TRUE(result.ok) << result.name << ": " << result.error;
    EXPECT_FALSE(result.from_cache);
  }
  EXPECT_EQ(service.stats().synthesized, 4);
}

TEST_F(ServiceTest, IndependentColdRunsProduceByteIdenticalStores) {
  const std::vector<std::string> names = {"Jacobi-2D", "HotSpot-2D"};
  auto run_into = [&](const std::string& dir) {
    ServiceOptions options;
    options.store_dir = (root_ / dir).string();
    SynthesisService service(options);
    for (const auto& name : names) {
      JobRequest request;
      request.program = small_program(name);
      const JobResult result = service.wait(service.submit(request));
      ASSERT_TRUE(result.ok) << result.error;
    }
  };
  run_into("store-a");
  run_into("store-b");
  const auto a = slurp_dir(root_ / "store-a");
  const auto b = slurp_dir(root_ / "store-b");
  ASSERT_EQ(a.size(), names.size());
  EXPECT_EQ(a, b) << "artifact bytes must be deterministic";
}

TEST_F(ServiceTest, StatsJsonIsWellFormed) {
  SynthesisService service(options_with_store());
  JobRequest request;
  request.program = small_program();
  ASSERT_TRUE(service.wait(service.submit(request)).ok);

  const support::JsonValue stats =
      support::JsonValue::parse(service.render_stats_json());
  EXPECT_EQ(stats.at("requests").as_int64(), 1);
  EXPECT_EQ(stats.at("synthesized").as_int64(), 1);
  EXPECT_EQ(stats.at("store_misses").as_int64(), 1);
  EXPECT_GT(stats.at("store_bytes").as_int64(), 0);
  EXPECT_GE(stats.at("latency_ms").at("p95").as_double(),
            stats.at("latency_ms").at("p50").as_double() * 0.999);
}

TEST_F(ServiceTest, JsonStatsMatchStructAndRegistryAfterMigration) {
  // The JSON stats now read from the service's metric registry; the
  // struct, the JSON and the exposition must agree on a known workload:
  // 3 requests for one key = 1 miss (cold), 2 hits (warm).
  SynthesisService service(options_with_store());
  JobRequest request;
  request.program = small_program();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.wait(service.submit(request)).ok);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.synthesized, 1);
  EXPECT_EQ(stats.store_hits, 2);
  EXPECT_EQ(stats.store_misses, 1);
  EXPECT_EQ(stats.failures, 0);

  const support::JsonValue json =
      support::JsonValue::parse(service.render_stats_json());
  EXPECT_EQ(json.at("requests").as_int64(), stats.requests);
  EXPECT_EQ(json.at("store_hits").as_int64(), stats.store_hits);
  EXPECT_EQ(json.at("store_misses").as_int64(), stats.store_misses);
  EXPECT_EQ(json.at("coalesced").as_int64(), stats.coalesced);
  EXPECT_EQ(json.at("synthesized").as_int64(), stats.synthesized);
  EXPECT_EQ(json.at("failures").as_int64(), stats.failures);
  EXPECT_EQ(json.at("store_bytes").as_int64(), stats.store_bytes);
  EXPECT_EQ(json.at("store_entries").as_int64(), stats.store_entries);
  EXPECT_DOUBLE_EQ(json.at("latency_ms").at("p50").as_double(),
                   stats.latency_p50_ms);
  EXPECT_DOUBLE_EQ(json.at("latency_ms").at("p95").as_double(),
                   stats.latency_p95_ms);

  const std::string exposition = service.render_metrics_exposition();
  EXPECT_NE(exposition.find("scl_serve_requests_total 3"),
            std::string::npos);
  EXPECT_NE(exposition.find("scl_serve_synthesized_total 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("scl_serve_store_hits 2"), std::string::npos);
  EXPECT_NE(exposition.find("scl_serve_store_misses 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("scl_serve_latency_ms_count 3"),
            std::string::npos);
}

TEST_F(ServiceTest, TwoServicesKeepIsolatedRegistries) {
  SynthesisService first(options_with_store());
  ServiceOptions storeless;
  SynthesisService second(storeless);
  JobRequest request;
  request.program = small_program();
  ASSERT_TRUE(first.wait(first.submit(request)).ok);
  EXPECT_EQ(first.stats().requests, 1);
  EXPECT_EQ(second.stats().requests, 0)
      << "per-instance registries must not share counters";
}

TEST_F(ServiceTest, ArtifactsAreByteIdenticalWithObservabilityEnabled) {
  // The determinism contract: observability is observation-only, so
  // flipping the global switch cannot change a single artifact byte.
  const bool was_enabled = support::obs::enabled();
  auto run_into = [&](const std::string& dir, bool observe) {
    support::obs::set_enabled(observe);
    ServiceOptions options;
    options.store_dir = (root_ / dir).string();
    SynthesisService service(options);
    JobRequest request;
    request.program = small_program();
    ASSERT_TRUE(service.wait(service.submit(request)).ok);
  };
  run_into("store-plain", false);
  run_into("store-observed", true);
  support::obs::set_enabled(was_enabled);
  const auto plain = slurp_dir(root_ / "store-plain");
  const auto observed = slurp_dir(root_ / "store-observed");
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, observed)
      << "observability must not perturb artifact bytes";
}

TEST_F(ServiceTest, SubmitWithoutProgramThrows) {
  SynthesisService service(options_with_store());
  EXPECT_THROW(service.submit(JobRequest{}), Error);
}

TEST_F(ServiceTest, StorelessServiceStillSynthesizes) {
  ServiceOptions options;  // no store_dir
  SynthesisService service(options);
  JobRequest request;
  request.program = small_program();
  const JobResult first = service.wait(service.submit(request));
  const JobResult second = service.wait(service.submit(request));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(second.from_cache);
  EXPECT_EQ(service.stats().synthesized, 2);
  EXPECT_EQ(service.store(), nullptr);
}

TEST(RequestKeyTest, SensitiveToProgramDeviceAndOptions) {
  const auto program = small_program();
  const std::string text = stencil::program_to_text(*program);
  core::FrameworkOptions options;

  const std::string base = request_key(text, options);
  EXPECT_EQ(base.size(), 32u);
  EXPECT_EQ(request_key(text, options), base) << "stable across calls";

  // A different program changes the key.
  const auto other = small_program("HotSpot-2D");
  EXPECT_NE(request_key(stencil::program_to_text(*other), options), base);

  // A result-affecting option changes the key.
  core::FrameworkOptions simulate = options;
  simulate.simulate = !simulate.simulate;
  EXPECT_NE(request_key(text, simulate), base);

  // The DSE thread count must NOT change the key (bit-deterministic
  // exploration is part of the contract).
  core::FrameworkOptions threads = options;
  threads.optimizer.threads = 7;
  EXPECT_EQ(request_key(text, threads), base);
}

}  // namespace
}  // namespace scl::serve
