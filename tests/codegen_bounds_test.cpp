// Consistency between the generated loop bounds and the simulator.
//
// The boundary generator emits C expressions over (r0.., it, pass_h); this
// test evaluates them with a tiny integer-expression interpreter and
// compares the resulting per-stage compute boxes against the geometry the
// discrete-event simulator would use for a matching interior tile. Any
// drift between what we *simulate* and what we *generate* shows up here.
#include <gtest/gtest.h>

#include <cctype>
#include <map>

#include "codegen/boundary_gen.hpp"
#include "codegen/context.hpp"
#include "sim/tile_task.hpp"
#include "stencil/kernels.hpp"

namespace scl::codegen {
namespace {

using Env = std::map<std::string, std::int64_t>;

/// Minimal evaluator for the bounds grammar: integers, identifiers,
/// + - * ( ), and the two-argument max()/min() calls the generator emits.
class BoundsEval {
 public:
  BoundsEval(const std::string& text, const Env& env)
      : text_(text), env_(env) {}

  std::int64_t eval() {
    const std::int64_t v = expr();
    skip();
    EXPECT_EQ(pos_, text_.size()) << "trailing input in: " << text_;
    return v;
  }

 private:
  void skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::int64_t expr() {
    std::int64_t v = term();
    while (true) {
      skip();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        const char op = text_[pos_++];
        const std::int64_t rhs = term();
        v = op == '+' ? v + rhs : v - rhs;
      } else {
        return v;
      }
    }
  }

  std::int64_t term() {
    std::int64_t v = factor();
    while (true) {
      skip();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        v *= factor();
      } else {
        return v;
      }
    }
  }

  std::int64_t factor() {
    skip();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      const std::int64_t v = expr();
      skip();
      EXPECT_EQ(text_[pos_], ')') << text_;
      ++pos_;
      return v;
    }
    if (pos_ < text_.size() &&
        (std::isdigit(static_cast<unsigned char>(text_[pos_])))) {
      std::int64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = v * 10 + (text_[pos_++] - '0');
      }
      return v;
    }
    // identifier or max(/min( call
    std::string ident;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ident.push_back(text_[pos_++]);
    }
    skip();
    if ((ident == "max" || ident == "min") && pos_ < text_.size() &&
        text_[pos_] == '(') {
      ++pos_;
      const std::int64_t a = expr();
      skip();
      EXPECT_EQ(text_[pos_], ',') << text_;
      ++pos_;
      const std::int64_t b = expr();
      skip();
      EXPECT_EQ(text_[pos_], ')') << text_;
      ++pos_;
      return ident == "max" ? std::max(a, b) : std::min(a, b);
    }
    auto it = env_.find(ident);
    EXPECT_NE(it, env_.end()) << "unbound identifier '" << ident << "' in "
                              << text_;
    return it == env_.end() ? 0 : it->second;
  }

  const std::string& text_;
  const Env& env_;
  std::size_t pos_ = 0;
};

std::int64_t eval_bound(const std::string& text, const Env& env) {
  BoundsEval e(text, env);
  return e.eval();
}

TEST(BoundsConsistencyTest, SingleStageConesMatchExtendedBoxes) {
  // Jacobi-2D, 2x2 heterogeneous kernels: the generated per-iteration
  // bounds for kernel 0 must equal the simulator's extended-box geometry:
  // cone on exterior faces, tile edge on shared faces, clamped to the
  // updatable region.
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  sim::DesignConfig c;
  c.kind = sim::DesignKind::kHeterogeneous;
  c.fused_iterations = 8;
  c.parallelism = {2, 2, 1};
  c.tile_size = {64, 64, 1};
  const GenContext ctx = GenContext::create(p, c, fpga::virtex7_690t());
  const LoopBounds bounds = stage_compute_bounds(ctx, 0, 0);

  for (const std::int64_t r0 : {0, 128}) {
    for (const std::int64_t it : {1, 4, 8}) {
      Env env{{"r0", r0}, {"r1", r0}, {"it", it}, {"pass_h", 8}};
      // Simulator-side expectation: the extended box of the tile at
      // iteration `it`, clipped to the updatable region (single-stage
      // program: stage shrink == iteration radius, residual 0).
      sim::TilePlacement tile = ctx.tile(0);
      for (int d = 0; d < 2; ++d) {
        const auto ds = static_cast<std::size_t>(d);
        tile.box.lo[ds] += r0;
        tile.box.hi[ds] += r0;
      }
      const auto ext = sim::extended_tile_box(p, tile, 8, it);
      const auto expected = ext.intersect(p.updated_box(0));

      EXPECT_EQ(eval_bound(bounds.lo[0], env), expected.lo[0])
          << "r0=" << r0 << " it=" << it << ": " << bounds.lo[0];
      EXPECT_EQ(eval_bound(bounds.lo[1], env), expected.lo[1]);
      // Kernel 0's high faces are pipe-shared: bound at tile edge.
      EXPECT_EQ(eval_bound(bounds.hi[0], env), tile.box.hi[0]);
      EXPECT_EQ(eval_bound(bounds.hi[1], env), tile.box.hi[1]);
    }
  }
}

TEST(BoundsConsistencyTest, BaselineConesOnAllFaces) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  sim::DesignConfig c;
  c.kind = sim::DesignKind::kBaseline;
  c.fused_iterations = 4;
  c.parallelism = {2, 2, 1};
  c.tile_size = {64, 64, 1};
  const GenContext ctx = GenContext::create(p, c, fpga::virtex7_690t());
  // Interior placement: region origin far from the grid border.
  const Env env{{"r0", 128}, {"r1", 128}, {"it", 1}, {"pass_h", 4}};
  const LoopBounds bounds = stage_compute_bounds(ctx, 0, 0);
  // Tile [128,192)^2, cone margin 1*(4-1)=3 on every face.
  EXPECT_EQ(eval_bound(bounds.lo[0], env), 125);
  EXPECT_EQ(eval_bound(bounds.hi[0], env), 195);
  EXPECT_EQ(eval_bound(bounds.lo[1], env), 125);
  EXPECT_EQ(eval_bound(bounds.hi[1], env), 195);
}

TEST(BoundsConsistencyTest, OwnedAndBufferBoundsEvaluate) {
  const auto p = scl::stencil::make_hotspot2d(256, 256, 64);
  sim::DesignConfig c;
  c.kind = sim::DesignKind::kHeterogeneous;
  c.fused_iterations = 8;
  c.parallelism = {2, 2, 1};
  c.tile_size = {64, 64, 1};
  const GenContext ctx = GenContext::create(p, c, fpga::virtex7_690t());
  const Env env{{"r0", 0}, {"r1", 0}};
  const LoopBounds owned = owned_bounds(ctx, 0, 0);
  EXPECT_EQ(eval_bound(owned.lo[0], env), 1);   // updatable region starts at 1
  EXPECT_EQ(eval_bound(owned.hi[0], env), 64);  // tile edge
  const LoopBounds buffer = buffer_bounds(ctx, 0);
  EXPECT_EQ(eval_bound(buffer.lo[0], env), 0);       // clipped at the grid
  EXPECT_EQ(eval_bound(buffer.hi[0], env), 64 + 1);  // one-cell pipe halo
}

}  // namespace
}  // namespace scl::codegen
