#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/ocl_import.hpp"
#include "stencil/kernels.hpp"
#include "stencil/reference.hpp"

namespace scl::frontend {
namespace {

using scl::stencil::StencilProgram;

// --- lexer ------------------------------------------------------------------

TEST(LexerTest, TokenKindsAndComments) {
  const auto toks = tokenize(
      "// line comment\n"
      "__kernel void f(/* block */ int N) { A[i*N+1] = 0.5f; }\n"
      "#define IGNORED 1\n");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "__kernel");
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
  bool has_float = false;
  for (const Token& t : toks) {
    if (t.text == "0.5f") has_float = true;
    EXPECT_NE(t.text, "IGNORED");  // preprocessor lines dropped
  }
  EXPECT_TRUE(has_float);
}

TEST(LexerTest, TwoCharOperators) {
  const auto toks = tokenize("a >= b && c != d");
  EXPECT_EQ(toks[1].text, ">=");
  EXPECT_EQ(toks[3].text, "&&");
  EXPECT_EQ(toks[5].text, "!=");
}

TEST(LexerTest, RejectsUnterminatedComment) {
  EXPECT_THROW(tokenize("int a; /* never closed"), Error);
  EXPECT_THROW(tokenize("weird @ character"), Error);
}

// --- single-kernel import ------------------------------------------------------

constexpr const char* kJacobi2d = R"(
// PolyBench-style naive Jacobi-2D NDRange kernel (paper Figure 3).
__kernel void jacobi2d(__global const float* restrict A,
                       __global float* restrict Anext,
                       const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i >= 1 && i < N - 1 && j >= 1 && j < N - 1) {
    Anext[i * N + j] = 0.2f * (A[i * N + j] + A[i * N + (j - 1)]
        + A[i * N + (j + 1)] + A[(i - 1) * N + j] + A[(i + 1) * N + j]);
  }
}
)";

OpenClImportOptions jacobi_options(std::int64_t n, std::int64_t h) {
  OpenClImportOptions o;
  o.extents = {n, n, 1};
  o.iterations = h;
  o.init_specs["A"] = "affine 3 5 0 2 97";
  return o;
}

TEST(OclImportTest, Jacobi2dStructure) {
  const StencilProgram p = import_opencl(kJacobi2d, jacobi_options(16, 8));
  EXPECT_EQ(p.name(), "jacobi2d");
  EXPECT_EQ(p.dims(), 2);
  EXPECT_EQ(p.field_count(), 1);       // A/Anext unified
  EXPECT_EQ(p.field(0).name, "A");
  EXPECT_EQ(p.stage_count(), 1);
  EXPECT_TRUE(p.stage_needs_double_buffer(0));
  EXPECT_EQ(p.stage(0).reads.size(), 5u);
  EXPECT_EQ(p.delta_w(0), 2);
  EXPECT_EQ(p.stage(0).ops.adds, 4);
  EXPECT_EQ(p.stage(0).ops.muls, 1);
}

TEST(OclImportTest, Jacobi2dBitExactAgainstBuiltin) {
  // Imported from OpenCL and built from the native factory, with the same
  // initializer: identical runs, bit for bit.
  const StencilProgram imported =
      import_opencl(kJacobi2d, jacobi_options(16, 8));
  const StencilProgram builtin = scl::stencil::make_jacobi2d(16, 16, 8);
  scl::stencil::ReferenceExecutor a(imported);
  scl::stencil::ReferenceExecutor b(builtin);
  a.run(8);
  b.run(8);
  EXPECT_TRUE(a.field(0).equals_on(b.field(0), imported.grid_box()));
}

TEST(OclImportTest, ConstantFieldStaysSeparate) {
  const char* src = R"(
__kernel void hotspot(__global const float* temp, __global float* temp_out,
                      __global const float* power, const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i > 0 && i < N - 1 && j > 0 && j < N - 1) {
    temp_out[i * N + j] = temp[i * N + j] + 0.5f * (power[i * N + j]
        + (temp[(i - 1) * N + j] + temp[(i + 1) * N + j]
           - 2.0f * temp[i * N + j]) * 0.1f);
  }
}
)";
  OpenClImportOptions o;
  o.extents = {12, 12, 1};
  o.iterations = 4;
  const StencilProgram p = import_opencl(src, o);
  ASSERT_EQ(p.field_count(), 2);
  EXPECT_EQ(p.field(0).name, "temp");
  EXPECT_EQ(p.field(1).name, "power");
  EXPECT_TRUE(p.is_constant_field(1));
  EXPECT_FALSE(p.is_constant_field(0));
}

TEST(OclImportTest, TemporariesAreInlined) {
  const char* src = R"(
__kernel void smooth(__global const float* u, __global float* un,
                     const int N) {
  int i = get_global_id(0);
  float lap = u[i - 1] + u[i + 1] - 2.0f * u[i];
  un[i] = u[i] + 0.25f * lap;
}
)";
  OpenClImportOptions o;
  o.extents = {32, 1, 1};
  o.iterations = 4;
  const StencilProgram p = import_opencl(src, o);
  EXPECT_EQ(p.stage(0).reads.size(), 3u);
  EXPECT_EQ(p.max_radius(), 1);
}

TEST(OclImportTest, MultiKernelInPlaceBecomesStages) {
  // FDTD-style: three kernels, each updating its own array in place.
  const char* src = R"(
__kernel void upd_ey(__global float* ey, __global const float* hz,
                     const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  ey[i * N + j] = ey[i * N + j] - 0.5f * (hz[i * N + j] - hz[(i - 1) * N + j]);
}
__kernel void upd_hz(__global float* hz, __global const float* ey,
                     const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  hz[i * N + j] = hz[i * N + j] - 0.7f * (ey[(i + 1) * N + j] - ey[i * N + j]);
}
)";
  OpenClImportOptions o;
  o.extents = {16, 16, 1};
  o.iterations = 4;
  const StencilProgram p = import_opencl(src, o);
  EXPECT_EQ(p.stage_count(), 2);
  EXPECT_EQ(p.field_count(), 2);
  EXPECT_FALSE(p.stage_needs_double_buffer(0));
  EXPECT_FALSE(p.stage_needs_double_buffer(1));
  // hz reads ey updated earlier in the iteration: composed radius 1 each way.
  EXPECT_EQ(p.iter_radii()[0][0], 1);
  EXPECT_EQ(p.iter_radii()[0][1], 1);
}

TEST(OclImportTest, ThreeDimensionalIndexRecovery) {
  const char* src = R"(
__kernel void j3d(__global const float* A, __global float* B,
                  const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  B[(i * NY + j) * NZ + k] = 0.1f * (A[(i * NY + j) * NZ + (k - 1)]
      + A[(i * NY + j) * NZ + (k + 1)] + A[((i + 1) * NY + j) * NZ + k]);
}
)";
  OpenClImportOptions o;
  o.extents = {8, 10, 12};  // deliberately non-cubic
  o.iterations = 2;
  const StencilProgram p = import_opencl(src, o);
  EXPECT_EQ(p.dims(), 3);
  const auto& r = p.iter_radii();
  EXPECT_EQ(r[2][0], 1);
  EXPECT_EQ(r[2][1], 1);
  EXPECT_EQ(r[0][1], 1);
  EXPECT_EQ(r[0][0], 0);
}

TEST(OclImportTest, ImportedProgramRunsThroughTheWholeStack) {
  // End to end: OpenCL text in, functional accelerator simulation out,
  // cross-checked against the reference executor.
  const StencilProgram p = import_opencl(kJacobi2d, jacobi_options(24, 6));
  scl::stencil::ReferenceExecutor ref(p);
  ref.run(6);
  // (Checked indirectly through program equality above; here just assert
  // the derived structure supports fusion.)
  EXPECT_EQ(p.max_radius(), 1);
  EXPECT_EQ(p.updated_box(0).lo[0], 1);
}

// --- rejection of out-of-subset constructs ------------------------------------

TEST(OclImportTest, RejectsNonAffineIndex) {
  const char* src = R"(
__kernel void bad(__global const float* A, __global float* B, const int N) {
  int i = get_global_id(0);
  B[i] = A[i * i];
}
)";
  OpenClImportOptions o;
  o.extents = {16, 1, 1};
  EXPECT_THROW(import_opencl(src, o), Error);
}

TEST(OclImportTest, RejectsWrongStride) {
  // Column-major indexing does not match the declared row-major extents.
  const char* src = R"(
__kernel void bad(__global const float* A, __global float* B, const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  B[j * N + i] = A[j * N + i];
}
)";
  OpenClImportOptions o;
  o.extents = {16, 8, 1};
  EXPECT_THROW(import_opencl(src, o), Error);
}

TEST(OclImportTest, RejectsTwoStoresPerKernel) {
  const char* src = R"(
__kernel void bad(__global float* A, __global float* B, const int N) {
  int i = get_global_id(0);
  A[i] = 1.0f;
  B[i] = 2.0f;
}
)";
  OpenClImportOptions o;
  o.extents = {16, 1, 1};
  EXPECT_THROW(import_opencl(src, o), Error);
}

TEST(OclImportTest, RejectsShiftedStore) {
  const char* src = R"(
__kernel void bad(__global const float* A, __global float* B, const int N) {
  int i = get_global_id(0);
  B[i + 1] = A[i];
}
)";
  OpenClImportOptions o;
  o.extents = {16, 1, 1};
  EXPECT_THROW(import_opencl(src, o), Error);
}

TEST(OclImportTest, RejectsKernelWithoutStore) {
  EXPECT_THROW(import_opencl(
                   "__kernel void empty(__global float* A) { }",
                   OpenClImportOptions{{8, 1, 1}, 1, 1, {}, "wave 0.1", ""}),
               Error);
}

TEST(OclImportTest, RejectsUnknownStatement) {
  const char* src = R"(
__kernel void bad(__global float* A, const int N) {
  for (int i = 0; i < N; ++i) A[i] = 0.0f;
}
)";
  OpenClImportOptions o;
  o.extents = {8, 1, 1};
  EXPECT_THROW(import_opencl(src, o), Error);
}

}  // namespace
}  // namespace scl::frontend
