#include <gtest/gtest.h>

#include "codegen/boundary_gen.hpp"
#include "codegen/context.hpp"
#include "codegen/opencl_emitter.hpp"
#include "codegen/pipe_gen.hpp"
#include "codegen/validator.hpp"
#include "stencil/kernels.hpp"
#include "support/math.hpp"
#include "support/strings.hpp"

namespace scl::codegen {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;

DesignConfig hetero2d(std::int64_t h, int k, std::int64_t w,
                      std::int64_t shrink = 0) {
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = h;
  c.parallelism = {k, k, 1};
  c.tile_size = {w, w, 1};
  c.edge_shrink = {shrink, shrink, 0};
  return c;
}

// --- GenContext --------------------------------------------------------------

TEST(GenContextTest, TilesAreRegionRelative) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GenContext ctx =
      GenContext::create(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  ASSERT_EQ(ctx.kernel_count(), 4);
  EXPECT_EQ(ctx.tile(0).box.lo[0], 0);
  EXPECT_EQ(ctx.tile(0).box.hi[0], 32);
  EXPECT_EQ(ctx.tile(3).box.lo[0], 32);
  EXPECT_EQ(ctx.tile(3).box.hi[1], 64);
}

TEST(GenContextTest, BaselineFacesAllExterior) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  DesignConfig c = hetero2d(8, 2, 32);
  c.kind = DesignKind::kBaseline;
  const GenContext ctx = GenContext::create(p, c, fpga::virtex7_690t());
  for (int k = 0; k < ctx.kernel_count(); ++k) {
    for (int d = 0; d < 2; ++d) {
      EXPECT_TRUE(ctx.tile(k).exterior[static_cast<std::size_t>(d)][0]);
      EXPECT_TRUE(ctx.tile(k).exterior[static_cast<std::size_t>(d)][1]);
    }
  }
}

TEST(GenContextTest, NeighborLookup) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GenContext ctx =
      GenContext::create(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  // Kernel layout is row-major over (c0, c1): k0=(0,0), k1=(0,1), ...
  EXPECT_EQ(ctx.neighbor_index(ctx.tile(0), 1, 1), 1);
  EXPECT_EQ(ctx.neighbor_index(ctx.tile(0), 0, 1), 2);
  EXPECT_EQ(ctx.neighbor_index(ctx.tile(0), 0, 0), -1);  // off the grid
}

// --- boundary generator -------------------------------------------------------

TEST(BoundaryGenTest, SharedFaceClipsAtTileEdge) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GenContext ctx =
      GenContext::create(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  // Kernel 0's high faces are shared: the bound must not contain the
  // cone term "(pass_h - it)".
  const LoopBounds b = stage_compute_bounds(ctx, 0, 0);
  EXPECT_EQ(b.hi[0].find("pass_h"), std::string::npos);
  // Its low faces are region-exterior: the cone term must appear.
  EXPECT_NE(b.lo[0].find("pass_h - it"), std::string::npos);
}

TEST(BoundaryGenTest, BoundsClampToUpdatableRegion) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GenContext ctx =
      GenContext::create(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  const LoopBounds b = stage_compute_bounds(ctx, 0, 0);
  // Jacobi's updatable region starts at 1 and ends at N-1.
  EXPECT_NE(b.lo[0].find("max("), std::string::npos);
  EXPECT_NE(b.lo[0].find(", 1)"), std::string::npos);
  EXPECT_NE(b.hi[0].find("min("), std::string::npos);
  EXPECT_NE(b.hi[0].find("255"), std::string::npos);
}

TEST(BoundaryGenTest, MultiStageResidualWidensIntermediateStages) {
  // FDTD's ey stage shrinks only on the low side of dim 0; on every other
  // exterior side its cone bound must carry a +1 residual so the hz stage
  // can consume it.
  const auto p = scl::stencil::make_fdtd2d(256, 256, 64);
  const GenContext ctx =
      GenContext::create(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  const LoopBounds ey = stage_compute_bounds(ctx, 0, 0);
  // dim0 low side: shrink 1, residual 0.
  EXPECT_NE(ey.lo[0].find("1 * (pass_h - it) + 0"), std::string::npos);
  // dim1 low side: shrink 0, residual 1.
  EXPECT_NE(ey.lo[1].find("1 * (pass_h - it) + 1"), std::string::npos);
}

// --- pipe generator ------------------------------------------------------------

TEST(PipeGenTest, BaselineHasNoPipes) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  DesignConfig c = hetero2d(8, 2, 32);
  c.kind = DesignKind::kBaseline;
  const GenContext ctx = GenContext::create(p, c, fpga::virtex7_690t());
  EXPECT_TRUE(enumerate_pipes(ctx).empty());
}

TEST(PipeGenTest, TwoPipesPerAdjacentPair) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GenContext ctx =
      GenContext::create(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  // 2x2 tiles: 4 adjacent pairs, 2 directed pipes each.
  const auto pipes = enumerate_pipes(ctx);
  EXPECT_EQ(pipes.size(), 8u);
  int k0_to_k1 = 0, k1_to_k0 = 0;
  for (const PipeDecl& pd : pipes) {
    if (pd.from_kernel == 0 && pd.to_kernel == 1) ++k0_to_k1;
    if (pd.from_kernel == 1 && pd.to_kernel == 0) ++k1_to_k0;
  }
  EXPECT_EQ(k0_to_k1, 1);
  EXPECT_EQ(k1_to_k0, 1);
}

TEST(PipeGenTest, DepthsArePowersOfTwo) {
  const auto p = scl::stencil::make_jacobi3d(128, 128, 128, 32);
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = 8;
  c.parallelism = {2, 2, 2};
  c.tile_size = {16, 16, 16};
  const GenContext ctx = GenContext::create(p, c, fpga::virtex7_690t());
  for (const PipeDecl& pd : enumerate_pipes(ctx)) {
    EXPECT_TRUE(scl::is_power_of_two(pd.depth)) << pd.name << " " << pd.depth;
    EXPECT_GE(pd.depth, fpga::virtex7_690t().pipe_fifo_depth);
  }
}

TEST(PipeGenTest, DeclarationsCarryXilinxDepthAttribute) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GenContext ctx =
      GenContext::create(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  const std::string decls = render_pipe_declarations(enumerate_pipes(ctx));
  EXPECT_EQ(scl::count_occurrences(decls, "pipe float "), 8u);
  EXPECT_EQ(scl::count_occurrences(decls, "xcl_reqd_pipe_depth"), 8u);
}

// --- full emission -------------------------------------------------------------

class EmitterTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EmitterTest, GeneratesStructurallyValidCode) {
  const auto& info = scl::stencil::find_benchmark(GetParam());
  std::array<std::int64_t, 3> extents{1, 1, 1};
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = 4;
  for (int d = 0; d < info.dims; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    extents[ds] = 128;
    c.parallelism[ds] = 2;
    c.tile_size[ds] = 32;
  }
  const auto p = info.make_scaled(extents, 64);
  const GeneratedCode code =
      generate_opencl(p, c, fpga::virtex7_690t());

  for (const auto& issue : validate_kernel_source(code.kernel_source)) {
    ADD_FAILURE() << GetParam() << " kernel: " << issue.message;
  }
  for (const auto& issue : validate_host_source(code.host_source)) {
    ADD_FAILURE() << GetParam() << " host: " << issue.message;
  }
  // One __kernel function per tile.
  EXPECT_EQ(scl::count_occurrences(code.kernel_source, "__kernel "),
            static_cast<std::size_t>(code.kernel_count));
  // Host creates one cl_kernel per compute unit.
  EXPECT_EQ(scl::count_occurrences(code.host_source, "clCreateKernel"),
            static_cast<std::size_t>(code.kernel_count));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EmitterTest,
                         ::testing::Values("Jacobi-1D", "Jacobi-2D",
                                           "Jacobi-3D", "HotSpot-2D",
                                           "HotSpot-3D", "FDTD-2D",
                                           "FDTD-3D"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string n = param_info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(EmitterTest, HeteroKernelUsesPipeBuiltins) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GeneratedCode code =
      generate_opencl(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  EXPECT_GT(scl::count_occurrences(code.kernel_source, "write_pipe_block("),
            0u);
  EXPECT_GT(scl::count_occurrences(code.kernel_source, "read_pipe_block("),
            0u);
  EXPECT_EQ(code.pipe_count, 8);
}

TEST(EmitterTest, BaselineKernelHasNoPipes) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  DesignConfig c = hetero2d(8, 2, 32);
  c.kind = DesignKind::kBaseline;
  const GeneratedCode code = generate_opencl(p, c, fpga::virtex7_690t());
  EXPECT_EQ(scl::count_occurrences(code.kernel_source, "_pipe_block("), 0u);
  EXPECT_EQ(code.pipe_count, 0);
  for (const auto& issue : validate_kernel_source(code.kernel_source)) {
    ADD_FAILURE() << issue.message;
  }
}

TEST(EmitterTest, FormulaAppearsWithLocalBufferIndexing) {
  const auto p = scl::stencil::make_jacobi2d(256, 256, 64);
  const GeneratedCode code =
      generate_opencl(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  EXPECT_NE(code.kernel_source.find("0.2f"), std::string::npos);
  EXPECT_NE(code.kernel_source.find("buf_A[K0_IDX(i0, i1)]"),
            std::string::npos);
  // Double-buffered Jacobi writes through the shadow array.
  EXPECT_NE(code.kernel_source.find("buf_A_new"), std::string::npos);
}

TEST(EmitterTest, HostDrivesRegionSweepWithPingPong) {
  const auto p = scl::stencil::make_hotspot2d(256, 256, 64);
  const GeneratedCode code =
      generate_opencl(p, hetero2d(8, 2, 32), fpga::virtex7_690t());
  EXPECT_NE(code.host_source.find("pass_parity"), std::string::npos);
  EXPECT_NE(code.host_source.find("kRegionExtent0"), std::string::npos);
  // The constant power field gets one buffer, temp gets a ping-pong pair.
  EXPECT_NE(code.host_source.find("temp_b"), std::string::npos);
  EXPECT_EQ(code.host_source.find("power_b"), std::string::npos);
  EXPECT_NE(code.host_source.find("clEnqueueTask"), std::string::npos);
}

// --- validator ------------------------------------------------------------------

TEST(ValidatorTest, DetectsUnbalancedBraces) {
  const auto issues = validate_kernel_source("void f() { {");
  EXPECT_FALSE(issues.empty());
}

TEST(ValidatorTest, DetectsLeftoverPlaceholder) {
  const auto issues = validate_kernel_source("float x = $A(0);");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("placeholder"), std::string::npos);
}

TEST(ValidatorTest, DetectsOrphanPipes) {
  const std::string src =
      "pipe float p_a __attribute__((xcl_reqd_pipe_depth(16)));\n"
      "void f() { float v; write_pipe_block(p_b, &v); }\n";
  const auto issues = validate_kernel_source(src);
  bool undeclared = false, unwritten = false;
  for (const auto& i : issues) {
    if (i.message.find("p_b") != std::string::npos) undeclared = true;
    if (i.message.find("p_a") != std::string::npos) unwritten = true;
  }
  EXPECT_TRUE(undeclared);
  EXPECT_TRUE(unwritten);
}

TEST(ValidatorTest, CleanSourcePasses) {
  // Point-to-point pairing: one kernel writes the pipe, another reads it.
  const std::string src =
      "pipe float p __attribute__((xcl_reqd_pipe_depth(16)));\n"
      "__kernel void k0() { float v; write_pipe_block(p, &v); }\n"
      "__kernel void k1() { float v; read_pipe_block(p, &v); }\n";
  EXPECT_TRUE(validate_kernel_source(src).empty());
}

TEST(ValidatorTest, DetectsSameKernelReadWrite) {
  // The pre-fix validator only matched read/write tokens globally, so a
  // kernel talking to itself through a pipe passed as "used both ways".
  const std::string src =
      "pipe float p __attribute__((xcl_reqd_pipe_depth(16)));\n"
      "__kernel void k0() { float v; write_pipe_block(p, &v); "
      "read_pipe_block(p, &v); }\n";
  const auto issues = validate_kernel_source(src);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].code, "SCL016");
  EXPECT_NE(issues[0].message.find("same"), std::string::npos);
}

TEST(ValidatorTest, DetectsOrphanDeclaredPipes) {
  // Declared but used in neither direction: both orphan codes fire.
  const std::string src =
      "pipe float p __attribute__((xcl_reqd_pipe_depth(16)));\n"
      "__kernel void k0() { }\n";
  const auto issues = validate_kernel_source(src);
  bool unwritten = false, unread = false;
  for (const auto& i : issues) {
    if (i.code == "SCL010") unwritten = true;
    if (i.code == "SCL011") unread = true;
  }
  EXPECT_TRUE(unwritten);
  EXPECT_TRUE(unread);
}

TEST(ValidatorTest, DetectsUndeclaredPipeUse) {
  const std::string src =
      "__kernel void k0() { float v; write_pipe_block(ghost_w, &v); }\n"
      "__kernel void k1() { float v; read_pipe_block(ghost_r, &v); }\n";
  const auto issues = validate_kernel_source(src);
  bool write_undeclared = false, read_undeclared = false;
  for (const auto& i : issues) {
    if (i.code == "SCL012") write_undeclared = true;
    if (i.code == "SCL013") read_undeclared = true;
  }
  EXPECT_TRUE(write_undeclared);
  EXPECT_TRUE(read_undeclared);
}

TEST(ValidatorTest, DetectsMultipleWritersAndReaders) {
  const std::string src =
      "pipe float p __attribute__((xcl_reqd_pipe_depth(16)));\n"
      "__kernel void k0() { float v; write_pipe_block(p, &v); }\n"
      "__kernel void k1() { float v; write_pipe_block(p, &v); }\n"
      "__kernel void k2() { float v; read_pipe_block(p, &v); }\n"
      "__kernel void k3() { float v; read_pipe_block(p, &v); }\n";
  const auto issues = validate_kernel_source(src);
  bool writers = false, readers = false;
  for (const auto& i : issues) {
    if (i.code == "SCL014") writers = true;
    if (i.code == "SCL015") readers = true;
  }
  EXPECT_TRUE(writers);
  EXPECT_TRUE(readers);
}

TEST(ValidatorTest, DiagnosticsCarryStableCodes) {
  const auto braces = validate_kernel_source("void f() { {");
  ASSERT_FALSE(braces.empty());
  EXPECT_EQ(braces[0].code, "SCL001");
  const auto placeholder = validate_kernel_source("float x = $A(0);");
  ASSERT_FALSE(placeholder.empty());
  EXPECT_EQ(placeholder[0].code, "SCL002");
  EXPECT_EQ(placeholder[0].severity, scl::support::Severity::kError);
}

}  // namespace
}  // namespace scl::codegen
