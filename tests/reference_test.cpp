#include <gtest/gtest.h>

#include <cmath>

#include "stencil/kernels.hpp"
#include "stencil/reference.hpp"

namespace scl::stencil {
namespace {

TEST(ReferenceTest, JacobiOneStepMatchesHandComputation) {
  const StencilProgram p = make_jacobi2d(4, 4, 1);
  // Capture the initial values before stepping.
  FieldSet init = make_initial_state(p, p.grid_box());
  ReferenceExecutor exec(p);
  exec.run(1);
  // Interior cells follow the 5-point average of the initial state.
  for (std::int64_t i = 1; i < 3; ++i) {
    for (std::int64_t j = 1; j < 3; ++j) {
      const float expect =
          0.2f * (init[0].at(Index{i, j, 0}) + init[0].at(Index{i, j - 1, 0}) +
                  init[0].at(Index{i, j + 1, 0}) +
                  init[0].at(Index{i - 1, j, 0}) +
                  init[0].at(Index{i + 1, j, 0}));
      EXPECT_EQ(exec.field(0).at(Index{i, j, 0}), expect);
    }
  }
}

TEST(ReferenceTest, BoundaryCellsNeverChange) {
  const StencilProgram p = make_jacobi2d(8, 8, 1);
  FieldSet init = make_initial_state(p, p.grid_box());
  ReferenceExecutor exec(p);
  exec.run(10);
  for_each_cell(p.grid_box(), [&](const Index& idx) {
    if (!p.updated_box(0).contains(idx)) {
      EXPECT_EQ(exec.field(0).at(idx), init[0].at(idx));
    }
  });
}

TEST(ReferenceTest, ConstantFieldNeverChanges) {
  const StencilProgram p = make_hotspot2d(8, 8, 1);
  FieldSet init = make_initial_state(p, p.grid_box());
  ReferenceExecutor exec(p);
  exec.run(10);
  EXPECT_TRUE(exec.field(1).equals_on(init[1], p.grid_box()));
}

TEST(ReferenceTest, RunIsIncremental) {
  const StencilProgram p = make_jacobi1d(32, 8);
  ReferenceExecutor once(p);
  once.run(8);
  ReferenceExecutor stepped(p);
  stepped.run(3);
  stepped.run(5);
  EXPECT_EQ(stepped.iteration(), 8);
  EXPECT_TRUE(once.field(0).equals_on(stepped.field(0), p.grid_box()));
}

TEST(ReferenceTest, RunZeroIsIdentity) {
  const StencilProgram p = make_jacobi1d(16, 4);
  FieldSet init = make_initial_state(p, p.grid_box());
  ReferenceExecutor exec(p);
  exec.run(0);
  EXPECT_TRUE(exec.field(0).equals_on(init[0], p.grid_box()));
}

TEST(ReferenceTest, NegativeRunRejected) {
  const StencilProgram p = make_jacobi1d(16, 4);
  ReferenceExecutor exec(p);
  EXPECT_THROW(exec.run(-1), ContractError);
}

TEST(ReferenceTest, JacobiStaysFiniteAndContracts) {
  // The averaging stencil is contractive; values must stay within the
  // initial min/max envelope.
  const StencilProgram p = make_jacobi2d(16, 16, 1);
  FieldSet init = make_initial_state(p, p.grid_box());
  float lo = 1e30f, hi = -1e30f;
  for_each_cell(p.grid_box(), [&](const Index& idx) {
    lo = std::min(lo, init[0].at(idx));
    hi = std::max(hi, init[0].at(idx));
  });
  ReferenceExecutor exec(p);
  exec.run(50);
  for_each_cell(p.grid_box(), [&](const Index& idx) {
    const float v = exec.field(0).at(idx);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, lo - 1e-4f);
    EXPECT_LE(v, hi + 1e-4f);
  });
}

TEST(ReferenceTest, AllBenchmarksStayFiniteOverManyIterations) {
  for (const BenchmarkInfo& info : paper_benchmarks()) {
    const StencilProgram p = info.make_scaled({10, 10, 10}, 40);
    ReferenceExecutor exec(p);
    exec.run(p.iterations());
    for (int f = 0; f < p.field_count(); ++f) {
      for_each_cell(p.grid_box(), [&](const Index& idx) {
        ASSERT_TRUE(std::isfinite(exec.field(f).at(idx)))
            << info.name << " field " << f << " at " << idx[0] << ","
            << idx[1] << "," << idx[2];
      });
    }
  }
}

TEST(ReferenceTest, FdtdInPlaceStageOrderingMatters) {
  // hz must see the ex/ey values updated earlier in the same iteration.
  // Verify by manually computing one iteration for a tiny grid.
  const StencilProgram p = make_fdtd2d(3, 3, 1);
  FieldSet s = make_initial_state(p, p.grid_box());
  auto ex = [&](std::int64_t i, std::int64_t j) {
    return s[0].at(Index{i, j, 0});
  };
  auto ey = [&](std::int64_t i, std::int64_t j) {
    return s[1].at(Index{i, j, 0});
  };
  auto hz = [&](std::int64_t i, std::int64_t j) {
    return s[2].at(Index{i, j, 0});
  };
  // Manual sequential update, same order as the program stages.
  for (std::int64_t i = 1; i < 3; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      s[1].at(Index{i, j, 0}) =
          ey(i, j) - 0.5f * (hz(i, j) - hz(i - 1, j));
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 1; j < 3; ++j)
      s[0].at(Index{i, j, 0}) =
          ex(i, j) - 0.5f * (hz(i, j) - hz(i, j - 1));
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 2; ++j)
      s[2].at(Index{i, j, 0}) =
          hz(i, j) - 0.7f * (ex(i, j + 1) - ex(i, j) + ey(i + 1, j) - ey(i, j));

  ReferenceExecutor exec(p);
  exec.run(1);
  for (int f = 0; f < 3; ++f) {
    EXPECT_TRUE(exec.field(f).equals_on(s[static_cast<std::size_t>(f)],
                                        p.grid_box()))
        << "field " << f;
  }
}

}  // namespace
}  // namespace scl::stencil
