// Tests for the content-addressed artifact store (serve/artifact_store.hpp).
#include "serve/artifact_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/serialize.hpp"
#include "support/error.hpp"

namespace scl::serve {
namespace {

namespace fs = std::filesystem;

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("scl-store-test-" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "-" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  ArtifactStore make_store(std::int64_t capacity = 0) {
    return ArtifactStore(
        ArtifactStoreOptions{root_.string(), capacity});
  }

  /// A deterministic, valid-looking 32-hex-char key.
  static std::string key_of(int i) {
    std::ostringstream key;
    key << std::hex << i;
    std::string tail = key.str();
    return std::string(32 - tail.size(), '0') + tail;
  }

  /// Path of the artifact file holding `key` (mirrors the sharded layout).
  fs::path file_of(const std::string& key) const {
    return root_ / key.substr(0, 2) / (key + ".scla");
  }

  fs::path root_;
};

TEST_F(ArtifactStoreTest, MissThenStoreThenHit) {
  ArtifactStore store = make_store();
  const std::string key = key_of(1);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_FALSE(store.contains(key));

  store.store(key, "payload-1");
  EXPECT_TRUE(store.contains(key));
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload-1");

  const ArtifactStoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.writes, 1);
  EXPECT_EQ(stats.hits, 1);
}

TEST_F(ArtifactStoreTest, OverwriteReplacesPayload) {
  ArtifactStore store = make_store();
  const std::string key = key_of(2);
  store.store(key, "old");
  store.store(key, "replacement");
  EXPECT_EQ(store.load(key).value(), "replacement");
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST_F(ArtifactStoreTest, RoundTripsArbitraryBytes) {
  ArtifactStore store = make_store();
  std::string payload;
  for (int i = 0; i < 256; ++i) {
    payload += static_cast<char>(i);  // includes NUL and newlines
  }
  store.store(key_of(3), payload);
  EXPECT_EQ(store.load(key_of(3)).value(), payload);
}

TEST_F(ArtifactStoreTest, SecondInstanceSeesPersistedArtifactsByteIdentical) {
  const std::string key = key_of(4);
  const std::string payload(10'000, 'x');
  std::string file_bytes_first;
  std::int64_t total_bytes_first = 0;
  {
    ArtifactStore store = make_store();
    store.store(key, payload);
    total_bytes_first = store.total_bytes();
    std::ifstream in(file_of(key), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    file_bytes_first = body.str();
  }
  // A fresh instance (a second process, as far as the store can tell)
  // scans the directory and serves the identical bytes, and its byte
  // accounting matches what the writing instance reported.
  {
    ArtifactStore store = make_store();
    EXPECT_EQ(store.entry_count(), 1u);
    EXPECT_EQ(store.total_bytes(), total_bytes_first);
    EXPECT_EQ(store.load(key).value(), payload);

    std::ifstream in(file_of(key), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    EXPECT_EQ(body.str(), file_bytes_first);
  }
}

TEST_F(ArtifactStoreTest, TruncatedFileIsDroppedAndMisses) {
  const std::string key = key_of(5);
  {
    ArtifactStore store = make_store();
    store.store(key, "a payload long enough to truncate meaningfully");
  }
  // Chop the tail off the artifact file.
  const fs::path file = file_of(key);
  const auto size = fs::file_size(file);
  fs::resize_file(file, size - 10);

  ArtifactStore store = make_store();
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_FALSE(fs::exists(file)) << "corrupt file must be deleted";
  EXPECT_EQ(store.stats().corrupt_dropped, 1);

  // The slot is reusable afterwards.
  store.store(key, "recomputed");
  EXPECT_EQ(store.load(key).value(), "recomputed");
}

TEST_F(ArtifactStoreTest, BitRotIsDetectedByChecksum) {
  const std::string key = key_of(6);
  {
    ArtifactStore store = make_store();
    store.store(key, "checksummed payload");
  }
  // Flip one payload byte without changing the length.
  const fs::path file = file_of(key);
  std::fstream io(file,
                  std::ios::in | std::ios::out | std::ios::binary);
  io.seekp(-1, std::ios::end);
  io.put('X');
  io.close();

  ArtifactStore store = make_store();
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.stats().corrupt_dropped, 1);
}

TEST_F(ArtifactStoreTest, GarbageHeaderIsDropped) {
  const std::string key = key_of(7);
  {
    ArtifactStore store = make_store();
    store.store(key, "fine");
  }
  std::ofstream(file_of(key), std::ios::binary) << "not an artifact";

  ArtifactStore store = make_store();
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.stats().corrupt_dropped, 1);
}

TEST_F(ArtifactStoreTest, CrossKeyRenameIsRejected) {
  const std::string key_a = key_of(8);
  const std::string key_b = "00" + key_a.substr(2, 29) + "f";
  {
    ArtifactStore store = make_store();
    store.store(key_a, "payload of a");
  }
  // Simulate an operator copying an artifact file onto another key.
  fs::create_directories(file_of(key_b).parent_path());
  fs::copy_file(file_of(key_a), file_of(key_b));

  ArtifactStore store = make_store();
  // The embedded key does not match the file name: corrupt, dropped.
  EXPECT_FALSE(store.load(key_b).has_value());
  EXPECT_EQ(store.load(key_a).value(), "payload of a");
}

TEST_F(ArtifactStoreTest, LruEvictionBoundsTotalBytes) {
  // Payloads of 1000 bytes, capacity for roughly three of them.
  ArtifactStore store = make_store(/*capacity=*/3'500);
  const std::string payload(1'000, 'p');
  for (int i = 0; i < 5; ++i) {
    store.store(key_of(100 + i), payload);
  }
  EXPECT_LE(store.total_bytes(), 3'500);
  EXPECT_EQ(store.entry_count(), 3u);
  EXPECT_GE(store.stats().evictions, 2);
  // Oldest keys went first.
  EXPECT_FALSE(store.contains(key_of(100)));
  EXPECT_FALSE(store.contains(key_of(101)));
  EXPECT_TRUE(store.contains(key_of(104)));
}

TEST_F(ArtifactStoreTest, LoadRefreshesRecency) {
  ArtifactStore store = make_store(/*capacity=*/2'500);
  const std::string payload(1'000, 'p');
  store.store(key_of(200), payload);
  store.store(key_of(201), payload);
  // Touch 200 so 201 becomes the LRU victim.
  EXPECT_TRUE(store.load(key_of(200)).has_value());
  store.store(key_of(202), payload);
  EXPECT_TRUE(store.contains(key_of(200)));
  EXPECT_FALSE(store.contains(key_of(201)));
}

TEST_F(ArtifactStoreTest, UnboundedCapacityNeverEvicts) {
  ArtifactStore store = make_store(/*capacity=*/0);
  const std::string payload(1'000, 'p');
  for (int i = 0; i < 16; ++i) store.store(key_of(300 + i), payload);
  EXPECT_EQ(store.entry_count(), 16u);
  EXPECT_EQ(store.stats().evictions, 0);
}

TEST_F(ArtifactStoreTest, RejectsMalformedKeys) {
  ArtifactStore store = make_store();
  EXPECT_THROW(store.store("short", "x"), Error);
  EXPECT_THROW(store.store("../../../../etc/passwd-0000000000000", "x"),
               Error);
  EXPECT_THROW(
      store.store("ABCDEF00112233445566778899aabbcc", "x"),  // uppercase
      Error);
}

TEST_F(ArtifactStoreTest, ScanIgnoresForeignFiles) {
  fs::create_directories(root_);
  std::ofstream(root_ / "README.txt") << "not an artifact";
  fs::create_directories(root_ / "zz");
  std::ofstream(root_ / "zz" / "junk.tmp") << "temp debris";
  ArtifactStore store = make_store();
  EXPECT_EQ(store.entry_count(), 0u);
  store.store(key_of(9), "fine");
  EXPECT_EQ(store.load(key_of(9)).value(), "fine");
}

TEST(Fnv1a64Test, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace scl::serve
