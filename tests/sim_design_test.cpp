#include <gtest/gtest.h>

#include "sim/design.hpp"
#include "sim/region.hpp"
#include "sim/timeline.hpp"
#include "stencil/kernels.hpp"

namespace scl::sim {
namespace {

using scl::stencil::make_jacobi1d;
using scl::stencil::make_jacobi2d;

DesignConfig hetero2d(std::int64_t h, int k, std::int64_t w,
                      std::int64_t shrink = 0) {
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = h;
  c.parallelism = {k, k, 1};
  c.tile_size = {w, w, 1};
  c.edge_shrink = {shrink, shrink, 0};
  return c;
}

TEST(DesignConfigTest, TotalKernels) {
  DesignConfig c;
  c.parallelism = {4, 2, 2};
  EXPECT_EQ(c.total_kernels(), 16);
}

TEST(DesignConfigTest, UnbalancedTileExtents) {
  const DesignConfig c = hetero2d(4, 4, 32);
  EXPECT_EQ(c.tile_extents(0),
            (std::vector<std::int64_t>{32, 32, 32, 32}));
  EXPECT_EQ(c.region_extent(0), 128);
}

TEST(DesignConfigTest, BalancedTileExtentsConserveRegion) {
  const DesignConfig c = hetero2d(4, 4, 32, 8);
  EXPECT_EQ(c.tile_extents(0),
            (std::vector<std::int64_t>{24, 40, 40, 24}));
  EXPECT_EQ(c.region_extent(0), 128);
}

TEST(DesignConfigTest, BalancedRemainderGoesToFirstInteriorTiles) {
  DesignConfig c = hetero2d(4, 5, 32, 8);
  // released = 16, interior = 3 -> 6,5,5.
  EXPECT_EQ(c.tile_extents(0),
            (std::vector<std::int64_t>{24, 38, 37, 37, 24}));
  EXPECT_EQ(c.region_extent(0), 160);
}

TEST(DesignConfigTest, BalanceFactor) {
  const DesignConfig c = hetero2d(4, 4, 32, 8);
  EXPECT_DOUBLE_EQ(c.balance_factor(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(c.balance_factor(0, 1), 1.25);
}

TEST(DesignConfigTest, ValidateAcceptsGoodConfig) {
  const auto p = make_jacobi2d(64, 64, 16);
  EXPECT_NO_THROW(hetero2d(4, 4, 16, 2).validate(p));
}

TEST(DesignConfigTest, ValidateRejectsBadConfigs) {
  const auto p = make_jacobi2d(64, 64, 16);
  EXPECT_THROW(hetero2d(0, 4, 16).validate(p), Error);       // h < 1
  EXPECT_THROW(hetero2d(17, 4, 16).validate(p), Error);      // h > H
  EXPECT_THROW(hetero2d(4, 0, 16).validate(p), Error);       // K < 1
  EXPECT_THROW(hetero2d(4, 4, 0).validate(p), Error);        // w < 1
  EXPECT_THROW(hetero2d(4, 4, 16, 16).validate(p), Error);   // shrink >= w
  EXPECT_THROW(hetero2d(4, 2, 16, 2).validate(p), Error);    // K_d <= 2
  DesignConfig bad = hetero2d(4, 4, 16, 2);
  bad.kind = DesignKind::kBaseline;
  EXPECT_THROW(bad.validate(p), Error);  // baseline cannot balance
  DesignConfig unroll0 = hetero2d(4, 4, 16);
  unroll0.unroll = 0;
  EXPECT_THROW(unroll0.validate(p), Error);
}

TEST(DesignConfigTest, ValidateRejectsActiveInactiveDims) {
  const auto p1 = make_jacobi1d(64, 8);
  DesignConfig c;
  c.parallelism = {4, 2, 1};  // dim 1 inactive for a 1-D program
  c.tile_size = {16, 1, 1};
  EXPECT_THROW(c.validate(p1), Error);
}

TEST(DesignConfigTest, SummaryIsReadable) {
  const DesignConfig c = hetero2d(8, 4, 32);
  const std::string s = c.summary(2);
  EXPECT_NE(s.find("Heterogeneous"), std::string::npos);
  EXPECT_NE(s.find("h=8"), std::string::npos);
  EXPECT_NE(s.find("32x32"), std::string::npos);
  EXPECT_NE(s.find("4x4"), std::string::npos);
}

// --- RegionGrid ------------------------------------------------------------

TEST(RegionGridTest, EvenDecomposition) {
  const auto p = make_jacobi2d(128, 128, 16);
  DesignConfig c = hetero2d(4, 2, 32);  // region 64x64
  const RegionGrid rg(p, c);
  EXPECT_EQ(rg.regions_per_pass(), 4);
  EXPECT_EQ(rg.passes(), 4);
  EXPECT_EQ(rg.last_pass_iterations(), 4);
  EXPECT_EQ(rg.total_region_executions(), 16);
}

TEST(RegionGridTest, RemainderPass) {
  const auto p = make_jacobi2d(64, 64, 10);
  DesignConfig c = hetero2d(4, 2, 32);  // region covers the grid
  const RegionGrid rg(p, c);
  EXPECT_EQ(rg.passes(), 3);
  EXPECT_EQ(rg.last_pass_iterations(), 2);
}

TEST(RegionGridTest, TilesPartitionEachRegion) {
  const auto p = make_jacobi2d(100, 100, 8);  // 100 = 64 + 36 remainder
  DesignConfig c = hetero2d(2, 2, 32);
  const RegionGrid rg(p, c);
  EXPECT_EQ(rg.regions_per_pass(), 4);
  std::int64_t covered = 0;
  for (const RegionPlan& plan : rg.all_regions()) {
    std::int64_t tiles_volume = 0;
    for (const TilePlacement& t : plan.tiles) {
      tiles_volume += t.box.volume();
      EXPECT_TRUE(plan.box.contains(t.box)) << t.box.to_string();
    }
    EXPECT_EQ(tiles_volume, plan.box.volume());
    covered += plan.box.volume();
  }
  EXPECT_EQ(covered, p.grid_box().volume());
}

TEST(RegionGridTest, DistinctShapeCountsSumToRegions) {
  const auto p = make_jacobi2d(100, 132, 8);
  DesignConfig c = hetero2d(2, 2, 16);  // region 32: 4 regions minus rem
  const RegionGrid rg(p, c);
  std::int64_t total = 0;
  for (const auto& shape : rg.distinct_shapes()) {
    total += shape.count;
  }
  EXPECT_EQ(total, rg.regions_per_pass());
}

TEST(RegionGridTest, ExteriorFlagsMatchRegionBoundary) {
  const auto p = make_jacobi2d(64, 64, 8);
  DesignConfig c = hetero2d(2, 2, 16);
  const RegionGrid rg(p, c);
  const RegionPlan plan = rg.all_regions().front();
  for (const TilePlacement& t : plan.tiles) {
    for (int d = 0; d < 2; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      EXPECT_EQ(t.exterior[ds][0], t.box.lo[ds] == plan.box.lo[ds]);
      EXPECT_EQ(t.exterior[ds][1], t.box.hi[ds] == plan.box.hi[ds]);
    }
  }
}

TEST(RegionGridTest, ClippedNeighborFaceBecomesExterior) {
  // 40 = 32 + 8: the second region column has extent 8, so with K=2 tiles
  // of nominal width 16 the second tile is empty and the first tile's high
  // face must be exterior.
  const auto p = make_jacobi2d(40, 40, 8);
  DesignConfig c = hetero2d(2, 2, 16);
  const RegionGrid rg(p, c);
  bool found_empty = false;
  for (const RegionPlan& plan : rg.all_regions()) {
    for (const TilePlacement& t : plan.tiles) {
      if (t.box.empty()) found_empty = true;
    }
    for (const TilePlacement& t : plan.tiles) {
      if (t.box.empty()) continue;
      for (int d = 0; d < 2; ++d) {
        const auto ds = static_cast<std::size_t>(d);
        if (t.box.hi[ds] == plan.box.hi[ds]) {
          EXPECT_TRUE(t.exterior[ds][1]);
        }
      }
    }
  }
  EXPECT_TRUE(found_empty);
}

TEST(RegionGridTest, GridEdgeFlags) {
  const auto p = make_jacobi2d(64, 64, 8);
  DesignConfig c = hetero2d(2, 2, 16);  // 2x2 regions
  const RegionGrid rg(p, c);
  const auto regions = rg.all_regions();
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_TRUE(regions[0].at_grid_edge[0][0]);
  EXPECT_FALSE(regions[0].at_grid_edge[0][1]);
  EXPECT_TRUE(regions[3].at_grid_edge[0][1]);
  EXPECT_TRUE(regions[3].at_grid_edge[1][1]);
}

// --- PhaseBreakdown ----------------------------------------------------------

TEST(PhaseBreakdownTest, TotalAndAccumulate) {
  PhaseBreakdown a;
  a.launch = 1;
  a.mem_read = 2;
  a.compute_own = 3;
  a.pipe_stall = 4;
  EXPECT_EQ(a.total(), 10);
  PhaseBreakdown b = a;
  b += a;
  EXPECT_EQ(b.total(), 20);
  EXPECT_EQ((a * 3).total(), 30);
}

TEST(PhaseBreakdownTest, ToStringHasPercentages) {
  PhaseBreakdown a;
  a.compute_own = 75;
  a.mem_read = 25;
  const std::string s = a.to_string();
  EXPECT_NE(s.find("75.0%"), std::string::npos);
  EXPECT_NE(s.find("25.0%"), std::string::npos);
}

}  // namespace
}  // namespace scl::sim
