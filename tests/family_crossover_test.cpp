// Cross-family Pareto behavior: with the device fixed, the optimizer's
// family choice flips with the problem scale. Small grids amortize
// nothing — the pipe-tiling sweep pays its per-pass kernel launches on a
// tiny cell count, while the temporal cascade folds T time steps into
// one deep pipeline — so the temporal family wins. At the paper's grid
// scale the cascade's shift registers grow with T x row width, BRAM caps
// the temporal degree, and the spatial tiling family takes over.
#include <gtest/gtest.h>

#include "arch/family.hpp"
#include "core/framework.hpp"
#include "core/optimizer.hpp"
#include "fpga/device.hpp"
#include "stencil/kernels.hpp"

namespace scl::core {
namespace {

using scl::arch::DesignFamily;

FrameworkOptions auto_options() {
  FrameworkOptions options;
  options.optimizer.device = fpga::find_device("xc7vx690t");
  options.simulate = false;
  options.generate_code = false;
  options.analyze = false;
  return options;
}

TEST(FamilyCrossover, TemporalWinsTheSmallGrid) {
  const auto program = scl::stencil::make_jacobi2d(64, 64, 64);
  const SynthesisReport report =
      Framework(program, auto_options()).synthesize();
  ASSERT_TRUE(report.temporal.has_value());
  EXPECT_LT(report.temporal->prediction.total_cycles,
            report.heterogeneous.prediction.total_cycles);
  EXPECT_EQ(report.selected_family, DesignFamily::kTemporalShift);
  EXPECT_EQ(report.selected().config.family, DesignFamily::kTemporalShift);
}

TEST(FamilyCrossover, PipeTilingWinsTheLargeGrid) {
  // Same kernel, same device — only the grid scale changes.
  const auto program = scl::stencil::make_jacobi2d(2048, 2048, 64);
  const SynthesisReport report =
      Framework(program, auto_options()).synthesize();
  ASSERT_TRUE(report.temporal.has_value());
  EXPECT_GT(report.temporal->prediction.total_cycles,
            report.heterogeneous.prediction.total_cycles);
  EXPECT_EQ(report.selected_family, DesignFamily::kPipeTiling);
  EXPECT_EQ(report.selected().config.family, DesignFamily::kPipeTiling);
}

TEST(FamilyCrossover, RetainedFrontierHoldsBothFamilies) {
  const auto program = scl::stencil::make_jacobi2d(512, 512, 64);
  OptimizerOptions options;
  options.device = fpga::find_device("xc7vx690t");
  const Optimizer optimizer(program, options);
  const DesignPoint base = optimizer.optimize_baseline();
  (void)optimizer.optimize_heterogeneous(base);
  (void)optimizer.optimize_temporal();
  bool saw_pipe = false;
  bool saw_temporal = false;
  for (const DesignPoint& point : optimizer.retained_frontier()) {
    saw_pipe |= point.config.family == DesignFamily::kPipeTiling;
    saw_temporal |= point.config.family == DesignFamily::kTemporalShift;
  }
  EXPECT_TRUE(saw_pipe);
  EXPECT_TRUE(saw_temporal)
      << "the latency/BRAM trade-off curve must expose both architectures";
}

TEST(FamilyCrossover, ForcedFamilyOverridesTheAutoWinner) {
  // On the large grid auto picks pipe-tiling; forcing temporal-shift
  // must emit the (slower) cascade design instead.
  const auto program = scl::stencil::make_jacobi2d(2048, 2048, 64);
  FrameworkOptions options = auto_options();
  options.family = FamilySelection::kTemporalShift;
  const SynthesisReport report = Framework(program, options).synthesize();
  EXPECT_EQ(report.selected_family, DesignFamily::kTemporalShift);

  options.family = FamilySelection::kPipeTiling;
  const SynthesisReport spatial = Framework(program, options).synthesize();
  EXPECT_FALSE(spatial.temporal.has_value())
      << "pipe-tiling-only flows skip the temporal search entirely";
  EXPECT_EQ(spatial.selected_family, DesignFamily::kPipeTiling);
}

TEST(FamilyCrossover, HbmBanksFlipTemporalDeepToSpatialWide) {
  // The device-driven crossover the multi-bank model exists for: the
  // DDR board's single channel rewards folding time, so its temporal
  // optimum is a deep unreplicated cascade (large T). The HBM part's 32
  // banks reward width — the optimum trades cascade depth for spatially
  // replicated PEs bound to disjoint bank groups (R > 1, smaller T).
  const auto program = scl::stencil::make_jacobi2d(192, 192, 64);
  auto temporal_on = [&](const char* device) {
    OptimizerOptions options;
    options.device = fpga::find_device(device);
    const Optimizer optimizer(program, options);
    return optimizer.optimize_temporal();
  };
  const DesignPoint deep = temporal_on("xc7vx690t");
  EXPECT_EQ(deep.config.replication, 1);
  const DesignPoint wide = temporal_on("xcu280");
  EXPECT_GT(wide.config.replication, 1)
      << "the HBM temporal winner must use spatial replication";
  EXPECT_LT(wide.config.fused_iterations, deep.config.fused_iterations)
      << "bank-fed replicas should displace cascade depth";
}

TEST(FamilyCrossover, HbmWinnerUsesSpatialReplication) {
  // At a scale where both families fit, the full auto flow on the HBM
  // part selects a spatially replicated pipe-tiling design, while the
  // DDR board at the same scale stays at R=1.
  const auto program = scl::stencil::make_jacobi2d(512, 512, 64);
  FrameworkOptions hbm = auto_options();
  hbm.optimizer.device = fpga::find_device("xcu280");
  const SynthesisReport on_hbm = Framework(program, hbm).synthesize();
  EXPECT_EQ(on_hbm.selected_family, DesignFamily::kPipeTiling);
  EXPECT_GT(on_hbm.selected().config.replication, 1);

  const SynthesisReport on_ddr =
      Framework(program, auto_options()).synthesize();
  EXPECT_EQ(on_ddr.selected().config.replication, 1);
}

TEST(FamilyCrossover, HbmWinnerIsInvariantToPruningAndThreads) {
  // The pinned crossover must be a property of the model, not of the
  // search schedule: pruning on/off and any worker count land on the
  // byte-identical winning design.
  const auto program = scl::stencil::make_jacobi2d(512, 512, 64);
  auto winner = [&](bool prune, int threads) {
    OptimizerOptions options;
    options.device = fpga::find_device("xcu280");
    options.prune = prune;
    options.threads = threads;
    const Optimizer optimizer(program, options);
    const DesignPoint base = optimizer.optimize_baseline();
    return optimizer.optimize_heterogeneous(base);
  };
  const DesignPoint reference = winner(true, 1);
  EXPECT_GT(reference.config.replication, 1);
  for (const auto& [prune, threads] :
       {std::pair{false, 1}, std::pair{true, 4}, std::pair{false, 4}}) {
    const DesignPoint other = winner(prune, threads);
    EXPECT_EQ(reference.config, other.config)
        << "prune=" << prune << " threads=" << threads;
    EXPECT_EQ(reference.prediction.total_cycles,
              other.prediction.total_cycles);
    EXPECT_EQ(reference.resources.total.bram18,
              other.resources.total.bram18);
  }
}

}  // namespace
}  // namespace scl::core
