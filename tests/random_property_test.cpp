// Randomized end-to-end property tests.
//
// For dozens of seeds, construct a random-but-valid stencil program
// (random dimensionality, field count, stage graph, axis-aligned offsets
// up to radius 3, contraction-bounded coefficients) and a random design
// point (kind, fusion depth, parallelism, tile sizes, balancing), then
// require the functionally-simulated accelerator to match the golden
// reference executor bit-exactly on every field.
//
// This sweeps corners the hand-written tests cannot enumerate: radius-2
// halos and strips, asymmetric per-side radii, stages reading fields
// written later in the iteration (cross-iteration versions through the
// pipes), constant fields, zero-radius stages, remainder regions and
// passes, and all combinations thereof.
#include <gtest/gtest.h>

#include "sim/executor.hpp"
#include "stencil/formula.hpp"
#include "stencil/parser.hpp"
#include "stencil/reference.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace scl::sim {
namespace {

using scl::stencil::Field;
using scl::stencil::Index;
using scl::stencil::Offset;
using scl::stencil::Stage;
using scl::stencil::StencilProgram;

std::string offset_text(const Offset& off, int dims) {
  std::vector<std::string> parts;
  for (int d = 0; d < dims; ++d) {
    parts.push_back(std::to_string(off[static_cast<std::size_t>(d)]));
  }
  return "(" + scl::join(parts, ",") + ")";
}

StencilProgram random_program(scl::Rng& rng) {
  const int dims = static_cast<int>(rng.uniform_int(1, 3));
  const int field_count = static_cast<int>(rng.uniform_int(1, 3));
  const int stage_count =
      static_cast<int>(rng.uniform_int(1, field_count));

  std::array<std::int64_t, 3> extents{1, 1, 1};
  for (int d = 0; d < dims; ++d) {
    extents[static_cast<std::size_t>(d)] = rng.uniform_int(10, 20);
  }
  const std::int64_t iterations = rng.uniform_int(3, 7);

  std::vector<std::string> names;
  std::vector<Field> fields;
  for (int f = 0; f < field_count; ++f) {
    names.push_back(scl::str_cat("f", f));
    fields.push_back(scl::stencil::make_field(
        names.back(),
        scl::str_cat("affine ", rng.uniform_int(1, 9), " ",
                     rng.uniform_int(1, 9), " ", rng.uniform_int(1, 9), " ",
                     rng.uniform_int(0, 9), " ", rng.uniform_int(31, 97))));
  }

  // Distinct output fields (a field is written by at most one stage);
  // remaining fields stay constant.
  std::vector<int> outputs;
  for (int f = 0; f < field_count; ++f) outputs.push_back(f);
  for (int f = field_count - 1; f > 0; --f) {
    std::swap(outputs[static_cast<std::size_t>(f)],
              outputs[static_cast<std::size_t>(rng.uniform_int(0, f))]);
  }

  std::vector<Stage> stages;
  for (int s = 0; s < stage_count; ++s) {
    const int terms = static_cast<int>(rng.uniform_int(2, 5));
    // Contraction-bounded coefficients keep every field finite forever,
    // so float comparisons never meet NaN.
    const double budget = 0.95 / terms;
    std::vector<std::string> parts;
    for (int t = 0; t < terms; ++t) {
      const int field = static_cast<int>(rng.uniform_int(0, field_count - 1));
      Offset off{0, 0, 0};
      const int axis = static_cast<int>(rng.uniform_int(0, dims - 1));
      // Mostly radius <= 2, occasionally 3 (wide halos and strips).
      const int max_r = rng.uniform_int(0, 7) == 0 ? 3 : 2;
      off[static_cast<std::size_t>(axis)] =
          static_cast<int>(rng.uniform_int(-max_r, max_r));
      const double coeff =
          budget * rng.uniform_double(0.3, 1.0) *
          (rng.uniform_int(0, 4) == 0 ? -1.0 : 1.0);
      parts.push_back(scl::str_cat(scl::format_fixed(coeff, 4), "f * $",
                                   names[static_cast<std::size_t>(field)],
                                   offset_text(off, dims)));
    }
    stages.push_back(scl::stencil::make_stage(
        scl::str_cat("s", s), outputs[static_cast<std::size_t>(s)],
        scl::join(parts, " + "), names, dims));
  }

  return StencilProgram(scl::str_cat("random", rng.next_u64() % 1000), dims,
                        extents, iterations, std::move(fields),
                        std::move(stages));
}

DesignConfig random_config(scl::Rng& rng, const StencilProgram& program) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    DesignConfig c;
    c.kind = rng.uniform_int(0, 1) == 0 ? DesignKind::kBaseline
                                        : DesignKind::kHeterogeneous;
    c.fused_iterations =
        rng.uniform_int(1, std::min<std::int64_t>(4, program.iterations()));
    c.unroll = static_cast<int>(rng.uniform_int(1, 4));
    for (int d = 0; d < program.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      c.parallelism[ds] = static_cast<int>(rng.uniform_int(1, 3));
      c.tile_size[ds] =
          rng.uniform_int(3, program.grid_box().extent(d));
      if (c.kind == DesignKind::kHeterogeneous && c.parallelism[ds] >= 3 &&
          c.tile_size[ds] > 2 && rng.uniform_int(0, 1) == 1) {
        c.edge_shrink[ds] = rng.uniform_int(1, 2);
      }
    }
    try {
      c.validate(program);
      return c;
    } catch (const scl::Error&) {
      continue;  // rare: shrink constraints; re-roll
    }
  }
  throw scl::Error("could not draw a valid random config");
}

class RandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProperty, TiledDesignsMatchReferenceBitExact) {
  scl::Rng rng(GetParam());
  const StencilProgram program = random_program(rng);
  const DesignConfig config = random_config(rng, program);

  SCOPED_TRACE(scl::str_cat("program: ", program.name(), " dims ",
                            program.dims(), " stages ", program.stage_count(),
                            " | ", config.summary(program.dims())));

  const Executor exec(fpga::virtex7_690t());
  const SimResult result =
      exec.run(program, config, SimMode::kFunctional);
  ASSERT_TRUE(result.fields.has_value());

  scl::stencil::ReferenceExecutor ref(program);
  ref.run(program.iterations());
  for (int f = 0; f < program.field_count(); ++f) {
    std::int64_t mismatches = 0;
    scl::stencil::for_each_cell(program.grid_box(), [&](const Index& p) {
      if ((*result.fields)[static_cast<std::size_t>(f)].at(p) !=
          ref.field(f).at(p)) {
        ++mismatches;
      }
    });
    EXPECT_EQ(mismatches, 0) << "field " << f;
  }

  // The timing fast path must agree with the functional run's clock.
  const SimResult timing = exec.run(program, config, SimMode::kTimingOnly);
  EXPECT_EQ(timing.total_cycles, result.total_cycles);
}

TEST_P(RandomProperty, RoundTripThroughStencilFormat) {
  scl::Rng rng(GetParam() ^ 0x9E3779B97F4A7C15ULL);
  const StencilProgram program = random_program(rng);
  const StencilProgram reparsed =
      scl::stencil::parse_program(scl::stencil::program_to_text(program));
  scl::stencil::ReferenceExecutor a(program);
  scl::stencil::ReferenceExecutor b(reparsed);
  a.run(program.iterations());
  b.run(program.iterations());
  for (int f = 0; f < program.field_count(); ++f) {
    EXPECT_TRUE(a.field(f).equals_on(b.field(f), program.grid_box()))
        << "field " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProperty,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace scl::sim
