#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "model/perf_model.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "support/math.hpp"

namespace scl::model {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::sim::Executor;
using scl::sim::SimMode;
using scl::sim::SimResult;

DesignConfig config2d(DesignKind kind, std::int64_t h, int k, std::int64_t w,
                      std::int64_t shrink = 0, int unroll = 1) {
  DesignConfig c;
  c.kind = kind;
  c.fused_iterations = h;
  c.parallelism = {k, k, 1};
  c.tile_size = {w, w, 1};
  c.edge_shrink = {shrink, shrink, 0};
  c.unroll = unroll;
  return c;
}

TEST(PerfModelTest, RegionCountMatchesPaperFormula) {
  const auto p = scl::stencil::make_jacobi2d(2048, 2048, 1024);
  const PerfModel model(p, fpga::virtex7_690t());
  // h=32, K=4x4, w=128: N = (1024/32) * (2048/512)^2 = 32 * 16.
  const auto pred =
      model.predict(config2d(DesignKind::kBaseline, 32, 4, 128));
  EXPECT_EQ(pred.n_region, 32 * 16);
}

TEST(PerfModelTest, RegionCountRoundsUp) {
  const auto p = scl::stencil::make_jacobi2d(100, 100, 10);
  const PerfModel model(p, fpga::virtex7_690t());
  // region extent 64 -> 2 regions per dim; passes = ceil(10/4) = 3.
  const auto pred = model.predict(config2d(DesignKind::kBaseline, 4, 2, 32));
  EXPECT_EQ(pred.n_region, 3 * 2 * 2);
}

TEST(PerfModelTest, ComponentsArePositiveAndSum) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const PerfModel model(p, fpga::virtex7_690t());
  const auto pred =
      model.predict(config2d(DesignKind::kHeterogeneous, 8, 4, 32));
  EXPECT_GT(pred.l_mem, 0.0);
  EXPECT_GT(pred.l_comp, 0.0);
  EXPECT_NEAR(pred.l_tile, pred.l_mem + pred.l_comp, 1e-9);
  EXPECT_NEAR(pred.total_cycles,
              static_cast<double>(pred.n_region) * pred.l_tile, 1e-6);
}

TEST(PerfModelTest, HeteroPredictedFasterThanBaseline) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 128);
  const PerfModel model(p, fpga::virtex7_690t());
  const double base =
      model.predict_cycles(config2d(DesignKind::kBaseline, 16, 4, 32));
  const double het =
      model.predict_cycles(config2d(DesignKind::kHeterogeneous, 16, 4, 32));
  EXPECT_LT(het, base);
}

TEST(PerfModelTest, DeeperFusionReducesMemoryComponent) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 128);
  const PerfModel model(p, fpga::virtex7_690t());
  const auto h4 = model.predict(config2d(DesignKind::kHeterogeneous, 4, 4, 32));
  const auto h16 =
      model.predict(config2d(DesignKind::kHeterogeneous, 16, 4, 32));
  // Per-cell memory cost falls with fusion: compare mem per region-pass
  // scaled by pass count.
  EXPECT_LT(static_cast<double>(h16.n_region) * h16.l_mem,
            static_cast<double>(h4.n_region) * h4.l_mem);
}

TEST(PerfModelTest, UnrollSpeedsUpCompute) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const PerfModel model(p, fpga::virtex7_690t());
  const auto u1 =
      model.predict(config2d(DesignKind::kBaseline, 8, 4, 32, 0, 1));
  const auto u8 =
      model.predict(config2d(DesignKind::kBaseline, 8, 4, 32, 0, 8));
  EXPECT_LT(u8.l_comp, u1.l_comp);
  EXPECT_DOUBLE_EQ(u8.l_mem, u1.l_mem);
}

TEST(PerfModelTest, PaperExactIsMoreConservative) {
  // Eq. 8 verbatim gives the slowest kernel the full Δw expansion in every
  // dimension; the refined per-kernel geometry can only be faster.
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const PerfModel refined(p, fpga::virtex7_690t(), ConeMode::kRefined);
  const PerfModel exact(p, fpga::virtex7_690t(), ConeMode::kPaperExact);
  const DesignConfig c = config2d(DesignKind::kHeterogeneous, 8, 4, 32);
  EXPECT_GE(exact.predict_cycles(c), refined.predict_cycles(c));
}

TEST(PerfModelTest, LambdaZeroWhenComputeDominates) {
  // Big tiles, tiny strips: all pipe traffic hides behind computation.
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const PerfModel model(p, fpga::virtex7_690t());
  const auto pred =
      model.predict(config2d(DesignKind::kHeterogeneous, 4, 4, 128));
  EXPECT_DOUBLE_EQ(pred.lambda, 0.0);
  EXPECT_DOUBLE_EQ(pred.l_share_exposed, 0.0);
}

TEST(PerfModelTest, BaselineHasNoPipeTerm) {
  const auto p = scl::stencil::make_jacobi2d(512, 512, 64);
  const PerfModel model(p, fpga::virtex7_690t());
  const auto pred = model.predict(config2d(DesignKind::kBaseline, 8, 4, 32));
  EXPECT_DOUBLE_EQ(pred.l_share_exposed, 0.0);
  EXPECT_DOUBLE_EQ(pred.lambda, 0.0);
}

TEST(PerfModelTest, RejectsInvalidConfig) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 8);
  const PerfModel model(p, fpga::virtex7_690t());
  EXPECT_THROW(model.predict(config2d(DesignKind::kBaseline, 0, 2, 16)),
               Error);
}

// --- model-vs-simulator agreement (the substance of Figure 7) ---------------

struct ValidationCase {
  const char* benchmark;
  DesignKind kind;
};

class ModelValidation : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(ModelValidation, UnderestimatesButTracksSimulator) {
  const auto& vc = GetParam();
  const auto& info = scl::stencil::find_benchmark(vc.benchmark);
  // Paper-style tile sizes: large enough that launch/burst overheads
  // amortize (the model deliberately omits them).
  std::array<std::int64_t, 3> extents{1, 1, 1};
  DesignConfig c;
  c.kind = vc.kind;
  c.unroll = 4;
  const std::int64_t tile =
      info.dims == 1 ? 8192 : (info.dims == 2 ? 64 : 32);
  for (int d = 0; d < info.dims; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    extents[ds] = tile * 8;
    c.parallelism[ds] = 2;
    c.tile_size[ds] = tile;
  }
  const auto p = info.make_scaled(extents, 64);
  const PerfModel model(p, fpga::virtex7_690t());
  const Executor exec(fpga::virtex7_690t());

  double worst_error = 0.0;
  std::vector<double> predicted, measured;
  for (const std::int64_t h : {4, 8, 16, 32}) {
    c.fused_iterations = h;
    const double pred = model.predict_cycles(c);
    const SimResult sim = exec.run(p, c, SimMode::kTimingOnly);
    predicted.push_back(pred);
    measured.push_back(static_cast<double>(sim.total_cycles));
    worst_error = std::max(
        worst_error, relative_error(pred, static_cast<double>(sim.total_cycles)));
  }
  // The model must track the simulator within a factor comfortably better
  // than the design-space differences it has to rank (paper: ~12% mean).
  EXPECT_LT(worst_error, 0.45) << vc.benchmark;
  // And it must underestimate on average (unmodeled launch/burst/barrier).
  double sum_pred = 0.0, sum_meas = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    sum_pred += predicted[i];
    sum_meas += measured[i];
  }
  EXPECT_LT(sum_pred, sum_meas) << vc.benchmark;
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, ModelValidation,
    ::testing::Values(ValidationCase{"Jacobi-2D", DesignKind::kBaseline},
                      ValidationCase{"Jacobi-2D", DesignKind::kHeterogeneous},
                      ValidationCase{"HotSpot-2D", DesignKind::kHeterogeneous},
                      ValidationCase{"FDTD-2D", DesignKind::kHeterogeneous},
                      ValidationCase{"Jacobi-3D", DesignKind::kHeterogeneous},
                      ValidationCase{"Jacobi-1D", DesignKind::kBaseline}),
    [](const ::testing::TestParamInfo<ValidationCase>& param_info) {
      std::string name = param_info.param.benchmark;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + (param_info.param.kind == DesignKind::kBaseline ? "_base"
                                                              : "_het");
    });

}  // namespace
}  // namespace scl::model
