// Tests for the tiered artifact cache (serve/tiered_store.hpp):
// promotion/demotion between the memory and disk tiers, write-through
// semantics, and the consistent-hash shard layout (stability, balance,
// minimal reshuffle on growth).
#include "serve/tiered_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace scl::serve {
namespace {

namespace fs = std::filesystem;

class TieredStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("scl-tiered-test-" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "-" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::vector<std::string> shard_roots(int count) const {
    std::vector<std::string> roots;
    for (int s = 0; s < count; ++s) {
      roots.push_back((root_ / ("shard-" + std::to_string(s))).string());
    }
    return roots;
  }

  TieredArtifactStore make_store(int shards, std::int64_t memory_bytes) {
    TieredStoreOptions options;
    options.shard_roots = shard_roots(shards);
    options.memory_capacity_bytes = memory_bytes;
    return TieredArtifactStore(std::move(options));
  }

  static std::string key_of(int i) {
    std::ostringstream key;
    key << std::hex << i;
    std::string tail = key.str();
    return std::string(32 - tail.size(), '0') + tail;
  }

  fs::path root_;
};

TEST_F(TieredStoreTest, RequiresAShardRoot) {
  EXPECT_THROW(TieredArtifactStore(TieredStoreOptions{}), Error);
}

TEST_F(TieredStoreTest, WriteThroughServesFromMemory) {
  TieredArtifactStore store = make_store(1, 1 << 20);
  store.store(key_of(1), "payload-1");
  bool from_memory = false;
  const auto payload = store.load(key_of(1), &from_memory);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "payload-1");
  EXPECT_TRUE(from_memory) << "write-through caches the fresh write";
  const TieredStoreStats stats = store.stats();
  EXPECT_EQ(stats.memory_hits, 1);
  EXPECT_EQ(stats.disk_hits, 0);
  EXPECT_EQ(stats.writes, 1);
}

TEST_F(TieredStoreTest, ColdStartPromotesDiskHitsIntoMemory) {
  // A second store over the same roots models a daemon restart: memory
  // is cold, disk is warm.
  make_store(2, 1 << 20).store(key_of(7), "persisted");
  TieredArtifactStore reopened = make_store(2, 1 << 20);
  EXPECT_EQ(reopened.memory_entries(), 0u);

  bool from_memory = true;
  ASSERT_EQ(reopened.load(key_of(7), &from_memory), "persisted");
  EXPECT_FALSE(from_memory) << "first load after restart is a disk hit";
  EXPECT_EQ(reopened.stats().promotions, 1);

  ASSERT_EQ(reopened.load(key_of(7), &from_memory), "persisted");
  EXPECT_TRUE(from_memory) << "the disk hit was promoted";
  const TieredStoreStats stats = reopened.stats();
  EXPECT_EQ(stats.disk_hits, 1);
  EXPECT_EQ(stats.memory_hits, 1);
}

TEST_F(TieredStoreTest, WarmupPreloadsDiskArtifactsAcrossRestart) {
  {
    TieredArtifactStore store = make_store(2, 1 << 20);
    for (int i = 0; i < 8; ++i) {
      store.store(key_of(i), "warm-payload-" + std::to_string(i));
    }
  }
  TieredStoreOptions options;
  options.shard_roots = shard_roots(2);
  options.memory_capacity_bytes = 1 << 20;
  options.warm_memory_tier = true;
  TieredArtifactStore reopened(std::move(options));

  EXPECT_EQ(reopened.memory_entries(), 8u);
  EXPECT_EQ(reopened.stats().warmed, 8);
  for (int i = 0; i < 8; ++i) {
    bool from_memory = false;
    ASSERT_EQ(reopened.load(key_of(i), &from_memory),
              "warm-payload-" + std::to_string(i));
    EXPECT_TRUE(from_memory)
        << "first post-restart request for " << key_of(i)
        << " must be a memory hit";
  }
  EXPECT_EQ(reopened.stats().disk_hits, 0)
      << "the warmed set never touches disk again";
}

TEST_F(TieredStoreTest, WarmupStopsAtTheMemoryBudget) {
  const std::string payload(600, 'x');
  {
    TieredArtifactStore store = make_store(1, 1 << 20);
    for (int i = 0; i < 10; ++i) store.store(key_of(i), payload);
  }
  TieredStoreOptions options;
  options.shard_roots = shard_roots(1);
  // Room for roughly three (key + payload) pairs, nowhere near ten.
  options.memory_capacity_bytes = 2000;
  options.warm_memory_tier = true;
  TieredArtifactStore reopened(std::move(options));

  EXPECT_GT(reopened.memory_entries(), 0u);
  EXPECT_LT(reopened.memory_entries(), 10u);
  EXPECT_LE(reopened.memory_bytes(), 2000);
  EXPECT_EQ(reopened.stats().demotions, 0)
      << "warmup must stop at the budget, not churn the LRU";
}

TEST_F(TieredStoreTest, MissReportsMissAndNothingElse) {
  TieredArtifactStore store = make_store(2, 1 << 20);
  EXPECT_FALSE(store.load(key_of(42)).has_value());
  EXPECT_FALSE(store.contains(key_of(42)));
  const TieredStoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits(), 0);
}

TEST_F(TieredStoreTest, MemoryPressureDemotesLruVictimsNotData) {
  // Memory fits ~2 of the 40-byte entries (key 32 + payload ~8); the
  // third insert demotes the least recently used. Demotion loses no
  // data: the victim is still on its disk shard.
  TieredArtifactStore store = make_store(1, 96);
  store.store(key_of(1), "aaaaaaaa");
  store.store(key_of(2), "bbbbbbbb");
  store.store(key_of(3), "cccccccc");
  EXPECT_GT(store.stats().demotions, 0);
  EXPECT_LE(store.memory_bytes(), 96);

  // Every payload is still readable; the demoted ones come from disk.
  for (int i = 1; i <= 3; ++i) {
    const auto payload = store.load(key_of(i));
    ASSERT_TRUE(payload.has_value()) << "key " << i;
    EXPECT_EQ(payload->size(), 8u);
  }
  EXPECT_GT(store.stats().disk_hits, 0);
}

TEST_F(TieredStoreTest, LruRefreshOnLoadProtectsHotKeys) {
  TieredArtifactStore store = make_store(1, 96);
  store.store(key_of(1), "aaaaaaaa");
  store.store(key_of(2), "bbbbbbbb");
  // Touch key 1 so key 2 is the LRU victim when key 3 arrives.
  bool from_memory = false;
  ASSERT_TRUE(store.load(key_of(1), &from_memory).has_value());
  ASSERT_TRUE(from_memory);
  store.store(key_of(3), "cccccccc");

  ASSERT_TRUE(store.load(key_of(1), &from_memory).has_value());
  EXPECT_TRUE(from_memory) << "recently touched key survived the demotion";
  ASSERT_TRUE(store.load(key_of(2), &from_memory).has_value());
  EXPECT_FALSE(from_memory) << "cold key was the demotion victim";
}

TEST_F(TieredStoreTest, OversizedPayloadBypassesMemoryTier) {
  TieredArtifactStore store = make_store(1, 64);
  store.store(key_of(1), std::string(1024, 'x'));  // larger than the tier
  EXPECT_EQ(store.memory_entries(), 0u);
  bool from_memory = true;
  ASSERT_TRUE(store.load(key_of(1), &from_memory).has_value());
  EXPECT_FALSE(from_memory);
}

TEST_F(TieredStoreTest, DisabledMemoryTierStillServes) {
  TieredArtifactStore store = make_store(2, 0);
  store.store(key_of(5), "payload");
  EXPECT_EQ(store.memory_entries(), 0u);
  bool from_memory = true;
  ASSERT_EQ(store.load(key_of(5), &from_memory), "payload");
  EXPECT_FALSE(from_memory);
  EXPECT_EQ(store.stats().disk_hits, 1);
}

TEST_F(TieredStoreTest, ShardLayoutIsStableAndExhaustive) {
  TieredArtifactStore store = make_store(4, 0);
  for (int i = 0; i < 200; ++i) {
    const std::size_t shard = store.shard_for(key_of(i));
    ASSERT_LT(shard, store.shard_count());
    EXPECT_EQ(store.shard_for(key_of(i)), shard) << "deterministic";
  }
}

TEST_F(TieredStoreTest, ShardsSplitTheKeyspaceRoughlyEvenly) {
  TieredArtifactStore store = make_store(4, 0);
  std::map<std::size_t, int> counts;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) ++counts[store.shard_for(key_of(i))];
  ASSERT_EQ(counts.size(), 4u) << "every shard owns part of the keyspace";
  for (const auto& [shard, count] : counts) {
    // 64 virtual nodes per shard: each holds 25% +/- a generous margin.
    EXPECT_GT(count, kKeys / 10) << "shard " << shard << " starved";
    EXPECT_LT(count, kKeys / 2) << "shard " << shard << " overloaded";
  }
}

TEST_F(TieredStoreTest, GrowingTheRingMovesOnlyAFractionOfKeys) {
  // The consistent-hash property: going 3 -> 4 shards reassigns ~1/4 of
  // the keyspace, and every key that stays maps to the same root (the
  // ring hashes root names, not indices).
  TieredStoreOptions three;
  three.shard_roots = shard_roots(3);
  TieredStoreOptions four;
  four.shard_roots = shard_roots(4);
  TieredArtifactStore before{std::move(three)};
  TieredArtifactStore after{std::move(four)};

  const int kKeys = 2000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (before.shard_for(key_of(i)) != after.shard_for(key_of(i))) ++moved;
  }
  EXPECT_GT(moved, 0) << "the new shard must take some keys";
  EXPECT_LT(moved, kKeys / 2)
      << "growth reshuffled far more than the ~1/4 consistent hashing "
         "promises; a modulo layout would move ~3/4";
}

TEST_F(TieredStoreTest, DataLandsOnTheRingAssignedShard) {
  TieredArtifactStore store = make_store(3, 0);
  for (int i = 0; i < 30; ++i) store.store(key_of(i), "payload");
  std::size_t total = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    total += store.shard(s).entry_count();
  }
  EXPECT_EQ(total, 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(store.shard(store.shard_for(key_of(i))).contains(key_of(i)));
  }
}

}  // namespace
}  // namespace scl::serve
