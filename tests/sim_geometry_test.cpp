// Unit tests for the tile/strip geometry helpers the pipe protocol rests
// on: extended (cone) boxes, halo strip boxes, and FIFO sizing.
#include <gtest/gtest.h>

#include "sim/tile_task.hpp"
#include "stencil/kernels.hpp"
#include "stencil/parser.hpp"

namespace scl::sim {
namespace {

using scl::stencil::Box;
using scl::stencil::Face;
using scl::stencil::Index;

TilePlacement place(std::array<std::int64_t, 3> lo,
                    std::array<std::int64_t, 3> hi,
                    std::array<std::array<bool, 2>, 3> exterior) {
  TilePlacement t;
  t.box.lo = {lo[0], lo[1], lo[2]};
  t.box.hi = {hi[0], hi[1], hi[2]};
  t.exterior = exterior;
  return t;
}

TEST(ExtendedBoxTest, GrowsOnlyExteriorFaces) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 16);
  // Tile [16,32)x[16,32): exterior on the low side of dim 0 only.
  const TilePlacement t = place({16, 16, 0}, {32, 32, 1},
                                {{{true, false}, {false, false}, {false, false}}});
  const Box e1 = extended_tile_box(p, t, /*h=*/8, /*i=*/1);
  EXPECT_EQ(e1.lo[0], 16 - 7);  // radius 1 * (8-1)
  EXPECT_EQ(e1.hi[0], 32);
  EXPECT_EQ(e1.lo[1], 16);
  EXPECT_EQ(e1.hi[1], 32);
  // Last iteration: no margin left.
  EXPECT_EQ(extended_tile_box(p, t, 8, 8), t.box);
}

TEST(ExtendedBoxTest, ClipsAtGrid) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 16);
  const TilePlacement t = place({0, 0, 0}, {16, 16, 1},
                                {{{true, true}, {true, true}, {false, false}}});
  const Box e = extended_tile_box(p, t, 8, 1);
  EXPECT_EQ(e.lo[0], 0);       // clipped at the grid border
  EXPECT_EQ(e.hi[0], 16 + 7);  // free to grow inward
}

TEST(HaloStripTest, SymmetricBetweenSenderAndReceiver) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 16);
  const TilePlacement a = place({0, 0, 0}, {16, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  const TilePlacement b = place({16, 0, 0}, {32, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  // a receives across its high-dim0 face; b receives across its low face.
  const Box recv_a = halo_strip_box(p, a, b, Face{0, +1}, 0, 8, 3);
  const Box send_b = halo_strip_box(p, a, b, Face{0, +1}, 0, 8, 3);
  EXPECT_EQ(recv_a, send_b);
  // The strip sits just above a's edge, one cell wide (radius 1).
  EXPECT_EQ(recv_a.lo[0], 16);
  EXPECT_EQ(recv_a.hi[0], 17);
  // Tangentially it follows the extended boxes (dim1 exterior, margin 5).
  EXPECT_EQ(recv_a.lo[1], 0);
  EXPECT_EQ(recv_a.hi[1], 32 + 5);
}

TEST(HaloStripTest, ZeroWidthFieldsHaveNoStrip) {
  // HotSpot's power field is only read at offset 0: no strips, ever.
  const auto p = scl::stencil::make_hotspot2d(64, 64, 16);
  const TilePlacement a = place({0, 0, 0}, {16, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  const TilePlacement b = place({16, 0, 0}, {32, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  EXPECT_TRUE(halo_strip_box(p, a, b, Face{0, +1}, /*power*/ 1, 8, 1).empty());
  EXPECT_FALSE(halo_strip_box(p, a, b, Face{0, +1}, /*temp*/ 0, 8, 1).empty());
}

TEST(HaloStripTest, RadiusTwoStencilsGetWiderStrips) {
  const auto p = scl::stencil::parse_program(R"(
stencil "r2" dims 2 grid 64 64 iterations 8
field u init constant 1
stage s writes u: 0.2f * ($u(0,0) + $u(-2,0) + $u(2,0) + $u(0,-2) + $u(0,2))
)");
  const TilePlacement a = place({0, 0, 0}, {16, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  const TilePlacement b = place({16, 0, 0}, {32, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  const Box strip = halo_strip_box(p, a, b, Face{0, +1}, 0, 4, 4);
  EXPECT_EQ(strip.hi[0] - strip.lo[0], 2);  // radius-2 halo
}

TEST(FifoSizingTest, CoversBothDirectionsAndTwoIterations) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 16);
  const TilePlacement a = place({0, 0, 0}, {16, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  const TilePlacement b = place({16, 0, 0}, {32, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  const std::int64_t cap =
      max_face_strip_elements(p, a, b, Face{0, +1}, /*h=*/8);
  // Strip at i=1 spans the tangential extended range (32 + 7) x width 1;
  // capacity doubles it for the two iterations in flight.
  EXPECT_EQ(cap, 2 * (32 + 7));
}

TEST(FifoSizingTest, MultiFieldProgramsSumTheirStrips) {
  const auto fdtd = scl::stencil::make_fdtd2d(64, 64, 16);
  const auto jacobi = scl::stencil::make_jacobi2d(64, 64, 16);
  const TilePlacement a = place({0, 0, 0}, {16, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  const TilePlacement b = place({16, 0, 0}, {32, 32, 1},
                                {{{false, false}, {true, true}, {false, false}}});
  // FDTD moves three mutable fields across the face; Jacobi one.
  EXPECT_GT(max_face_strip_elements(fdtd, a, b, Face{0, +1}, 8),
            max_face_strip_elements(jacobi, a, b, Face{0, +1}, 8));
}

TEST(UndersizedFifoTest, SymmetricSendsSurviveViaOpportunisticDrain) {
  // Pipes far smaller than a boundary strip would deadlock a naive
  // send-then-receive protocol (both kernels blocked mid-send on each
  // other's full FIFO). The tile tasks drain their inboxes into pending
  // strip buffers whenever a send backpressures, so even depth-4 FIFOs
  // make progress — build the two-tile region manually and check it
  // completes.
  const auto p = scl::stencil::make_jacobi2d(64, 64, 16);
  const TilePlacement a = place({0, 0, 0}, {32, 64, 1},
                                {{{true, false}, {true, true}, {false, false}}});
  const TilePlacement b = place({32, 0, 0}, {64, 64, 1},
                                {{{false, true}, {true, true}, {false, false}}});
  ocl::Pipe ab("ab", 4, 2);
  ocl::Pipe ba("ba", 4, 2);
  ocl::GlobalMemory memory(fpga::virtex7_690t());

  auto make_params = [&](const TilePlacement& self, const TilePlacement& peer,
                         int side, ocl::Pipe* out, ocl::Pipe* in) {
    TileTaskParams params;
    params.program = &p;
    params.mode = SimMode::kTimingOnly;
    params.kind = DesignKind::kHeterogeneous;
    params.tile = self;
    params.neighbors[0][static_cast<std::size_t>(side)] = peer;
    params.fused_iterations = 4;
    params.stage_cycles_per_element = {1.0};
    params.stage_depth = {0};
    params.memory = &memory;
    params.out_pipes[0][static_cast<std::size_t>(side)] = out;
    params.in_pipes[0][static_cast<std::size_t>(side)] = in;
    return params;
  };

  ocl::Runtime runtime;
  runtime.add_task(std::make_shared<TileTask>(make_params(a, b, 1, &ab, &ba)));
  runtime.add_task(std::make_shared<TileTask>(make_params(b, a, 0, &ba, &ab)));
  ASSERT_NO_THROW(runtime.run_all());
  EXPECT_GT(runtime.completion_cycles(), 0);
  // Both directions actually moved whole strips through the tiny FIFOs.
  EXPECT_GT(ab.total_written(), ab.capacity());
  EXPECT_GT(ba.total_written(), ba.capacity());
}

}  // namespace
}  // namespace scl::sim
