// The whole Table-2 suite imported from real OpenCL sources.
//
// Every benchmark ships as a naive NDRange `.cl` kernel file under
// examples/opencl/. Importing each file must yield a program that runs
// bit-identically to the built-in factory — proving the front end
// recovers exactly the stencil the OpenCL code expresses (offsets,
// stage order, ping-pong unification, constant fields).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "frontend/ocl_import.hpp"
#include "stencil/kernels.hpp"
#include "stencil/reference.hpp"

#ifndef SCL_REPO_DIR
#define SCL_REPO_DIR "."
#endif

namespace scl::frontend {
namespace {

using scl::stencil::StencilProgram;

struct SuiteCase {
  const char* benchmark;       // built-in name
  const char* cl_file;         // file under examples/opencl/
  std::array<std::int64_t, 3> extents;
  std::map<std::string, std::string> inits;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<SuiteCase> suite_cases() {
  return {
      {"Jacobi-1D", "jacobi1d.cl", {40, 1, 1}, {{"A", "affine 3 0 0 2 97"}}},
      {"Jacobi-2D", "jacobi2d.cl", {18, 18, 1}, {{"A", "affine 3 5 0 2 97"}}},
      {"Jacobi-3D",
       "jacobi3d.cl",
       {10, 12, 14},
       {{"A", "affine 3 5 7 2 97"}}},
      {"HotSpot-2D",
       "hotspot2d.cl",
       {18, 18, 1},
       {{"temp", "affine 1 2 0 320 41"}, {"power", "affine 7 11 0 1 13"}}},
      {"HotSpot-3D",
       "hotspot3d.cl",
       {10, 12, 14},
       {{"temp", "affine 1 2 3 320 41"}, {"power", "affine 7 11 5 1 13"}}},
      {"FDTD-2D",
       "fdtd2d.cl",
       {18, 18, 1},
       {{"ex", "wave 0.3"}, {"ey", "wave 0.2"}, {"hz", "wave 0.4"}}},
      {"FDTD-3D",
       "fdtd3d.cl",
       {10, 12, 14},
       {{"ex", "wave 0.10"},
        {"ey", "wave 0.12"},
        {"ez", "wave 0.14"},
        {"hx", "wave 0.16"},
        {"hy", "wave 0.18"},
        {"hz", "wave 0.20"}}},
  };
}

class OpenClSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(OpenClSuite, ImportedKernelsMatchBuiltinsBitExact) {
  const SuiteCase& sc = GetParam();
  const std::string source = read_file(
      std::string(SCL_REPO_DIR) + "/examples/opencl/" + sc.cl_file);
  ASSERT_FALSE(source.empty());

  OpenClImportOptions options;
  options.extents = sc.extents;
  options.iterations = 6;
  options.init_specs = sc.inits;
  const StencilProgram imported = import_opencl(source, options);

  const StencilProgram builtin =
      scl::stencil::find_benchmark(sc.benchmark).make_scaled(sc.extents, 6);

  ASSERT_EQ(imported.field_count(), builtin.field_count()) << sc.benchmark;
  ASSERT_EQ(imported.stage_count(), builtin.stage_count());
  EXPECT_EQ(imported.iter_radii(), builtin.iter_radii());

  scl::stencil::ReferenceExecutor a(imported);
  scl::stencil::ReferenceExecutor b(builtin);
  a.run(6);
  b.run(6);
  // Fields may be declared in a different order; compare by name.
  for (int fa = 0; fa < imported.field_count(); ++fa) {
    int fb = -1;
    for (int f = 0; f < builtin.field_count(); ++f) {
      if (builtin.field(f).name == imported.field(fa).name) fb = f;
    }
    ASSERT_GE(fb, 0) << "field " << imported.field(fa).name;
    std::int64_t mismatches = 0;
    scl::stencil::for_each_cell(
        imported.grid_box(), [&](const scl::stencil::Index& p) {
          if (a.field(fa).at(p) != b.field(fb).at(p)) ++mismatches;
        });
    EXPECT_EQ(mismatches, 0)
        << sc.benchmark << " field " << imported.field(fa).name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, OpenClSuite,
                         ::testing::ValuesIn(suite_cases()),
                         [](const ::testing::TestParamInfo<SuiteCase>& param_info) {
                           std::string n = param_info.param.benchmark;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace scl::frontend
