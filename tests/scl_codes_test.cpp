// Registry coverage: every SCL code any pass can emit must be declared in
// support::diagnostic_catalog(), and every cataloged code must be
// exercised by at least one golden test. This is the enforcement arm of
// the catalog — adding a diagnostic without registering it, or
// registering one without a test that makes it fire, fails here.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "support/diagnostics.hpp"

namespace scl::support {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// All `SCL<ddd>` occurrences in one string.
std::set<std::string> scl_codes_in(const std::string& text) {
  std::set<std::string> codes;
  for (std::size_t pos = text.find("SCL"); pos != std::string::npos;
       pos = text.find("SCL", pos + 3)) {
    if (pos + 6 <= text.size() && std::isdigit(text[pos + 3]) &&
        std::isdigit(text[pos + 4]) && std::isdigit(text[pos + 5]) &&
        (pos + 6 == text.size() || !std::isdigit(text[pos + 6]))) {
      codes.insert(text.substr(pos, 6));
    }
  }
  return codes;
}

std::set<std::string> scl_codes_under(const fs::path& root) {
  std::set<std::string> codes;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    const std::set<std::string> found = scl_codes_in(read_file(entry.path()));
    codes.insert(found.begin(), found.end());
  }
  return codes;
}

TEST(SclCatalogTest, IsNonEmptySortedAndUnique) {
  const auto& catalog = diagnostic_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const CatalogEntry& entry = catalog[i];
    EXPECT_EQ(std::string(entry.code).size(), 6u) << entry.code;
    EXPECT_EQ(std::string(entry.code).substr(0, 3), "SCL") << entry.code;
    EXPECT_FALSE(std::string(entry.pass).empty()) << entry.code;
    EXPECT_FALSE(std::string(entry.meaning).empty()) << entry.code;
    if (i > 0) {
      EXPECT_LT(std::string(catalog[i - 1].code), std::string(entry.code))
          << "catalog must be in strictly ascending code order";
    }
  }
}

TEST(SclCatalogTest, EveryCodeEmittedFromSrcIsCataloged) {
  const fs::path src = fs::path(SCL_REPO_DIR) / "src";
  ASSERT_TRUE(fs::exists(src));
  std::set<std::string> cataloged;
  for (const CatalogEntry& entry : diagnostic_catalog()) {
    cataloged.insert(entry.code);
  }
  for (const std::string& code : scl_codes_under(src)) {
    EXPECT_TRUE(cataloged.count(code))
        << code << " appears in src/ but is not in diagnostic_catalog()";
  }
}

TEST(SclCatalogTest, EveryCatalogedCodeHasAGoldenTest) {
  const fs::path tests = fs::path(SCL_REPO_DIR) / "tests";
  ASSERT_TRUE(fs::exists(tests));
  const std::set<std::string> tested = scl_codes_under(tests);
  for (const CatalogEntry& entry : diagnostic_catalog()) {
    EXPECT_TRUE(tested.count(entry.code))
        << entry.code << " (" << entry.meaning
        << ") is cataloged but no test under tests/ mentions it";
  }
}

TEST(SclCatalogTest, SeverityRenderingIsStable) {
  EXPECT_STREQ(to_string(Severity::kError), "error");
  EXPECT_STREQ(to_string(Severity::kWarning), "warning");
  EXPECT_STREQ(to_string(Severity::kNote), "note");
}

}  // namespace
}  // namespace scl::support
