#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "ocl/memory.hpp"
#include "ocl/pipe.hpp"
#include "ocl/runtime.hpp"

namespace scl::ocl {
namespace {

// --- Pipe -----------------------------------------------------------------

TEST(PipeTest, RejectsBadConstruction) {
  EXPECT_THROW(Pipe("p", 0, 1), ContractError);
  EXPECT_THROW(Pipe("p", 4, -1), ContractError);
}

TEST(PipeTest, FifoOrderAndPayloads) {
  Pipe p("p", 8, 1);
  p.write({1.0f, 2.0f, 3.0f}, 0, 0);
  const auto r = p.read(3, 0);
  EXPECT_EQ(r.values, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(p.size(), 0);
}

TEST(PipeTest, WriteChargesCpipePerElement) {
  Pipe p("p", 8, 3);
  const auto w = p.write({1, 2, 3, 4}, 0, 100);
  EXPECT_EQ(w.written, 4);
  EXPECT_EQ(w.writer_clock, 100 + 4 * 3);
}

TEST(PipeTest, ReaderWaitsForAvailability) {
  Pipe p("p", 8, 2);
  p.write({5.0f}, 0, 1000);  // element ready at 1002
  const auto r = p.read(1, 10);
  EXPECT_EQ(r.reader_clock, 1002);  // reader arrived early, waits
  const auto w2 = p.write({6.0f}, 0, 0);
  const auto r2 = p.read(1, 5000);
  EXPECT_EQ(r2.reader_clock, 5000);  // reader arrived late, no wait
  EXPECT_EQ(w2.written, 1);
}

TEST(PipeTest, CapacityLimitsWrite) {
  Pipe p("p", 4, 1);
  const auto w1 = p.write({1, 2, 3, 4, 5, 6}, 0, 0);
  EXPECT_EQ(w1.written, 4);
  EXPECT_EQ(p.free_slots(), 0);
  const auto w2 = p.write({1, 2, 3, 4, 5, 6}, 4, 0);
  EXPECT_EQ(w2.written, 0);  // full: no progress
  p.read(2, 0);
  const auto w3 = p.write({5, 6}, 0, 0);
  EXPECT_EQ(w3.written, 2);
}

TEST(PipeTest, BackpressurePropagatesReaderClock) {
  // Fill the FIFO, drain it late, then the next write cannot complete
  // before the slot was freed.
  Pipe p("p", 2, 1);
  p.write({1, 2}, 0, 0);
  p.read(2, 500);  // slots freed at 500
  const auto w = p.write({3.0f}, 0, 10);
  EXPECT_EQ(w.writer_clock, 501);  // max(10, 500) + C_pipe
}

TEST(PipeTest, UnderflowIsContractViolation) {
  Pipe p("p", 4, 1);
  p.write({1.0f}, 0, 0);
  EXPECT_THROW(p.read(2, 0), ContractError);
}

TEST(PipeTest, Statistics) {
  Pipe p("p", 4, 1);
  p.write({1, 2, 3}, 0, 0);
  p.read(1, 0);
  p.write({4.0f}, 0, 0);
  EXPECT_EQ(p.total_written(), 4);
  EXPECT_EQ(p.max_occupancy(), 3);
}


TEST(PipeTest, CountedVariantsMatchPayloadAccounting) {
  // write/read and write_counted/read_counted must produce identical
  // clocks and occupancy — only the payloads differ.
  Pipe a("a", 64, 3);
  Pipe b("b", 64, 3);
  const std::vector<float> data(40, 1.0f);
  const auto wa = a.write(data, 0, 100);
  const auto wb = b.write_counted(40, 100);
  EXPECT_EQ(wa.written, wb.written);
  EXPECT_EQ(wa.writer_clock, wb.writer_clock);
  const auto ra = a.read(25, 7);
  const auto rb = b.read_counted(25, 7);
  EXPECT_EQ(ra.reader_clock, rb.reader_clock);
  EXPECT_EQ(ra.values.size(), 25u);
  EXPECT_TRUE(rb.values.empty());
  EXPECT_EQ(a.size(), b.size());
  const auto ra2 = a.read(15, 0);
  const auto rb2 = b.read_counted(15, 0);
  EXPECT_EQ(ra2.reader_clock, rb2.reader_clock);
}

TEST(PipeTest, PartialRunReadsKeepAffineStamps) {
  // Reading a batch in pieces must see per-element availability (the run
  // representation may not collapse stamps).
  Pipe p("p", 64, 2);
  p.write(std::vector<float>(10, 0.0f), 0, 0);  // ready 2,4,...,20
  EXPECT_EQ(p.read(1, 0).reader_clock, 2);
  EXPECT_EQ(p.read(4, 0).reader_clock, 10);  // elements 2..5, last at 10
  EXPECT_EQ(p.read(5, 0).reader_clock, 20);
}

TEST(PipeTest, CountedUnderflowIsContractViolation) {
  Pipe p("p", 8, 1);
  p.write_counted(3, 0);
  EXPECT_THROW(p.read_counted(4, 0), ContractError);
}

// --- GlobalMemory -----------------------------------------------------------

TEST(MemoryTest, TransferCyclesScalesWithSharers) {
  // 16 B/cycle DDR shared among kernels, 4 B/cycle AXI port ceiling.
  const fpga::DeviceSpec dev = fpga::virtex7_690t();
  GlobalMemory mem(dev, 0);
  EXPECT_EQ(mem.transfer_cycles(1600, 4), 400);   // fair share = port cap
  EXPECT_EQ(mem.transfer_cycles(1600, 8), 800);   // fair share 2 B/cycle
  EXPECT_EQ(mem.transfer_cycles(1600, 16), 1600);
  EXPECT_EQ(mem.transfer_cycles(0, 4), 0);
}

TEST(MemoryTest, SingleKernelIsPortLimited) {
  // One AXI master cannot saturate the DDR controller: 1 sharer and 4
  // sharers see the same per-kernel bandwidth.
  const fpga::DeviceSpec dev = fpga::virtex7_690t();
  GlobalMemory mem(dev, 0);
  EXPECT_EQ(mem.transfer_cycles(1600, 1), mem.transfer_cycles(1600, 4));
}

TEST(MemoryTest, BurstSetupAddsFixedCost) {
  const fpga::DeviceSpec dev = fpga::virtex7_690t();
  GlobalMemory mem(dev, 120);
  EXPECT_EQ(mem.transfer_cycles(4, 1), 121);
}

TEST(MemoryTest, RejectsBadArguments) {
  GlobalMemory mem(fpga::virtex7_690t());
  EXPECT_THROW(mem.transfer_cycles(-1, 1), ContractError);
  EXPECT_THROW(mem.transfer_cycles(64, 0), ContractError);
}

TEST(MemoryTest, Statistics) {
  GlobalMemory mem(fpga::virtex7_690t());
  mem.record_transfer(100);
  mem.record_transfer(28);
  EXPECT_EQ(mem.total_bytes(), 128);
}

// --- Runtime ----------------------------------------------------------------

/// Produces `count` values into a pipe, blocking on backpressure.
class Producer final : public KernelTask {
 public:
  Producer(std::string name, Pipe& pipe, std::int64_t count)
      : name_(std::move(name)), pipe_(&pipe), count_(count) {}

  StepResult step() override {
    if (sent_ == count_) return StepResult::kDone;
    std::vector<float> chunk;
    const std::int64_t n = std::min<std::int64_t>(count_ - sent_, 3);
    for (std::int64_t i = 0; i < n; ++i) {
      chunk.push_back(static_cast<float>(sent_ + i));
    }
    const auto w = pipe_->write(chunk, 0, clock_);
    clock_ = std::max(clock_, w.writer_clock);
    sent_ += w.written;
    return w.written == 0 ? StepResult::kBlocked : StepResult::kProgress;
  }

  std::int64_t clock() const override { return clock_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  Pipe* pipe_;
  std::int64_t count_;
  std::int64_t sent_ = 0;
  std::int64_t clock_ = 0;
};

/// Consumes `count` values and records them.
class Consumer final : public KernelTask {
 public:
  Consumer(std::string name, Pipe& pipe, std::int64_t count)
      : name_(std::move(name)), pipe_(&pipe), count_(count) {}

  StepResult step() override {
    if (received_ == count_) return StepResult::kDone;
    const std::int64_t avail =
        std::min<std::int64_t>(pipe_->size(), count_ - received_);
    if (avail == 0) return StepResult::kBlocked;
    const auto r = pipe_->read(avail, clock_);
    clock_ = r.reader_clock;
    for (float v : r.values) values.push_back(v);
    received_ += avail;
    return StepResult::kProgress;
  }

  std::int64_t clock() const override { return clock_; }
  const std::string& name() const override { return name_; }

  std::vector<float> values;

 private:
  std::string name_;
  Pipe* pipe_;
  std::int64_t count_;
  std::int64_t received_ = 0;
  std::int64_t clock_ = 0;
};

/// Blocks forever on an empty pipe (for deadlock detection tests).
class Starved final : public KernelTask {
 public:
  explicit Starved(Pipe& pipe) : pipe_(&pipe) {}
  StepResult step() override {
    if (pipe_->size() == 0) return StepResult::kBlocked;
    return StepResult::kDone;
  }
  std::int64_t clock() const override { return 0; }
  const std::string& name() const override { return name_; }

 private:
  Pipe* pipe_;
  std::string name_ = "starved";
};

TEST(RuntimeTest, ProducerConsumerThroughTinyFifo) {
  // FIFO depth 2 forces many blocked/resume rounds; all 100 values must
  // arrive in order.
  Pipe pipe("p", 2, 1);
  Runtime rt;
  rt.add_task(std::make_shared<Producer>("prod", pipe, 100));
  auto consumer = std::make_shared<Consumer>("cons", pipe, 100);
  rt.add_task(consumer);
  rt.run_all();
  ASSERT_EQ(consumer->values.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(consumer->values[i], static_cast<float>(i));
  }
  // 100 elements through a C_pipe=1 FIFO: at least 100 cycles of transfer.
  EXPECT_GE(rt.completion_cycles(), 100);
}

TEST(RuntimeTest, DeadlockDetected) {
  Pipe never("never", 2, 1);
  Runtime rt;
  rt.add_task(std::make_shared<Starved>(never));
  EXPECT_THROW(rt.run_all(), DeadlockError);
}

TEST(RuntimeTest, DeadlockMessageNamesKernels) {
  Pipe never("never", 2, 1);
  Runtime rt;
  rt.add_task(std::make_shared<Starved>(never));
  try {
    rt.run_all();
    FAIL();
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("starved"), std::string::npos);
  }
}

TEST(RuntimeTest, CompletionBeforeRunThrows) {
  Runtime rt;
  EXPECT_THROW(rt.completion_cycles(), ContractError);
}

TEST(RuntimeTest, EmptyRuntimeCompletesAtZero) {
  Runtime rt;
  rt.run_all();
  EXPECT_EQ(rt.completion_cycles(), 0);
}

TEST(RuntimeTest, NullTaskRejected) {
  Runtime rt;
  EXPECT_THROW(rt.add_task(nullptr), ContractError);
}

TEST(RuntimeTest, ChainedPipes) {
  // prod -> relay -> cons, exercising multi-hop scheduling.
  Pipe a("a", 4, 1);
  Pipe b("b", 4, 1);

  class Relay final : public KernelTask {
   public:
    Relay(Pipe& in, Pipe& out, std::int64_t count)
        : in_(&in), out_(&out), count_(count) {}
    StepResult step() override {
      if (forwarded_ == count_ && buffer_.empty()) return StepResult::kDone;
      bool progress = false;
      if (buffer_.empty() && in_->size() > 0) {
        const auto r = in_->read(in_->size(), clock_);
        clock_ = r.reader_clock;
        buffer_ = r.values;
        offset_ = 0;
        progress = true;
      }
      if (!buffer_.empty()) {
        const auto w = out_->write(buffer_, offset_, clock_);
        clock_ = std::max(clock_, w.writer_clock);
        offset_ += static_cast<std::size_t>(w.written);
        forwarded_ += w.written;
        if (w.written > 0) progress = true;
        if (offset_ == buffer_.size()) {
          buffer_.clear();
          offset_ = 0;
        }
      }
      return progress ? StepResult::kProgress : StepResult::kBlocked;
    }
    std::int64_t clock() const override { return clock_; }
    const std::string& name() const override { return name_; }

   private:
    Pipe* in_;
    Pipe* out_;
    std::int64_t count_;
    std::vector<float> buffer_;
    std::size_t offset_ = 0;
    std::int64_t forwarded_ = 0;
    std::int64_t clock_ = 0;
    std::string name_ = "relay";
  };

  Runtime rt;
  rt.add_task(std::make_shared<Producer>("prod", a, 37));
  rt.add_task(std::make_shared<Relay>(a, b, 37));
  auto consumer = std::make_shared<Consumer>("cons", b, 37);
  rt.add_task(consumer);
  rt.run_all();
  ASSERT_EQ(consumer->values.size(), 37u);
  for (std::size_t i = 0; i < 37; ++i) {
    EXPECT_EQ(consumer->values[i], static_cast<float>(i));
  }
}

}  // namespace
}  // namespace scl::ocl
