// Regenerates the paper's Figure 6: execution-time breakdown for
// Jacobi-2D and Jacobi-3D, baseline vs heterogeneous.
//
// The paper's bars show how the heterogeneous design eliminates the
// redundant-computation and memory-transfer shares and shrinks the
// synchronization wait. We print the same decomposition from the
// discrete-event simulator's per-phase accounting, summed over all
// kernels and regions and normalized to each design's total.
#include <iostream>

#include "core/framework.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

void breakdown_row(scl::TableWriter* table, const char* benchmark,
                   const char* design, const scl::sim::SimResult& sim) {
  const scl::sim::PhaseBreakdown& p = sim.phases;
  const double total = static_cast<double>(p.total());
  auto pct = [&](std::int64_t v) {
    return scl::format_fixed(100.0 * static_cast<double>(v) / total, 1) + "%";
  };
  table->add_row({benchmark, design, pct(p.compute_own),
                  pct(p.compute_redundant), pct(p.mem_read + p.mem_write),
                  pct(p.pipe_transfer + p.pipe_stall),
                  pct(p.launch + p.barrier_wait),
                  scl::format_fixed(sim.total_ms, 1)});
}

}  // namespace

int main() {
  std::cout << "==== Figure 6: Execution time breakdown (Jacobi-2D, "
               "Jacobi-3D) ====\n\n";
  scl::TableWriter table({"Benchmark", "Design", "compute",
                          "redundant", "memory", "pipe", "launch+wait",
                          "total ms"});
  for (const char* name : {"Jacobi-2D", "Jacobi-3D"}) {
    const auto program = scl::stencil::find_benchmark(name).make_paper_scale();
    scl::core::FrameworkOptions options;
    options.generate_code = false;
    const scl::core::Framework framework(program, options);
    const scl::core::SynthesisReport rep = framework.synthesize();
    breakdown_row(&table, name, "Baseline", rep.baseline_sim);
    breakdown_row(&table, name, "Heterogeneous", rep.heterogeneous_sim);

    const double red_b = rep.baseline_sim.redundancy_ratio();
    const double red_h = rep.heterogeneous_sim.redundancy_ratio();
    std::cout << name << ": redundant cell updates " << scl::format_fixed(
                     100.0 * red_b, 1)
              << "% (baseline) -> " << scl::format_fixed(100.0 * red_h, 1)
              << "% (heterogeneous); global memory traffic "
              << scl::format_thousands(
                     rep.baseline_sim.global_memory_bytes / (1 << 20))
              << " MiB -> "
              << scl::format_thousands(
                     rep.heterogeneous_sim.global_memory_bytes / (1 << 20))
              << " MiB\n";
  }
  std::cout << "\n" << table.to_text();
  std::cout <<
      "\nShares are of total kernel-cycles summed over all compute units.\n"
      "Paper reference (Fig. 6): for Jacobi-2D the baseline spends ~17% on\n"
      "redundant computation and ~6% on extra memory transfer, both\n"
      "eliminated by the heterogeneous design; Jacobi-3D saves more because\n"
      "cone overlap grows with dimensionality.\n";
  return 0;
}
