// Ablation studies for the design choices DESIGN.md calls out.
//
//  A. Workload balancing (§3.2): heterogeneous design with and without the
//     edge-shrink factors — the paper credits balancing with ~9% less
//     synchronization wait.
//  B. Communication-latency hiding (§3.1): independent-first scheduling on
//     vs. fully exposed pipe writes (λ = 1).
//  C. Kernel-launch delay: how much of the model's underestimate the
//     sequential launches explain (re-simulate with zero launch cost).
//  D. Cone model refinement: the paper's Eq. 8 (full Δw for the slowest
//     kernel) vs. our per-kernel exterior-face geometry.
#include <iostream>

#include "core/optimizer.hpp"
#include "model/perf_model.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::sim::Executor;
using scl::sim::SimMode;
using scl::sim::SimResult;
using scl::sim::SimTuning;

int main() {
  std::cout << "==== Ablation studies ====\n\n";
  const scl::fpga::DeviceSpec device = scl::fpga::virtex7_690t();

  // A fixed mid-size heterogeneous design with interior tiles (3x3 CUs) so
  // balancing has corners to offload.
  const auto program = scl::stencil::make_jacobi2d(2048, 2048, 512);
  DesignConfig config;
  config.kind = DesignKind::kHeterogeneous;
  config.fused_iterations = 32;
  config.parallelism = {3, 3, 1};
  config.tile_size = {96, 96, 1};
  config.unroll = 8;

  // --- A: workload balancing -------------------------------------------------
  {
    std::cout << "A. Workload balancing (Jacobi-2D, 3x3 CUs, h=32):\n";
    scl::TableWriter table(
        {"edge shrink", "total ms", "barrier+stall share", "speedup vs 0"});
    const Executor executor(device);
    double base_ms = 0.0;
    for (const std::int64_t shrink : {0, 1, 2, 4, 8}) {
      config.edge_shrink = {shrink, shrink, 0};
      const SimResult r = executor.run(program, config, SimMode::kTimingOnly);
      if (shrink == 0) base_ms = r.total_ms;
      const double waits = static_cast<double>(r.phases.barrier_wait +
                                               r.phases.pipe_stall) /
                           static_cast<double>(r.phases.total());
      table.add_row({std::to_string(shrink), scl::format_fixed(r.total_ms, 1),
                     scl::format_fixed(100.0 * waits, 1) + "%",
                     scl::format_speedup(base_ms / r.total_ms)});
    }
    config.edge_shrink = {0, 0, 0};
    std::cout << table.to_text() << "\n";
  }

  // --- B: latency hiding -------------------------------------------------------
  {
    std::cout << "B. Communication-latency hiding (same design, shrink 2):\n";
    config.edge_shrink = {2, 2, 0};
    scl::TableWriter table({"scheduling", "total ms", "pipe-exposed cycles"});
    for (const bool hiding : {true, false}) {
      SimTuning tuning;
      tuning.latency_hiding = hiding;
      const Executor executor(device, tuning);
      const SimResult r = executor.run(program, config, SimMode::kTimingOnly);
      table.add_row(
          {hiding ? "independent-first (paper SS3.1)" : "exposed (lambda=1)",
           scl::format_fixed(r.total_ms, 1),
           scl::format_thousands(r.phases.pipe_transfer +
                                 r.phases.pipe_stall)});
    }
    config.edge_shrink = {0, 0, 0};
    std::cout << table.to_text() << "\n";
  }

  // --- C: launch-delay sensitivity ----------------------------------------------
  {
    std::cout << "C. Kernel-launch delay (source of the model's "
                 "underestimate):\n";
    const scl::model::PerfModel model(program, device);
    const double predicted = model.predict_cycles(config);
    scl::TableWriter table(
        {"launch delay (cycles)", "measured Mcyc", "model underest."});
    for (const std::int64_t launch : {0, 1000, 2000, 4000}) {
      scl::fpga::DeviceSpec dev = device;
      dev.kernel_launch_cycles = launch;
      const Executor executor(dev);
      const SimResult r = executor.run(program, config, SimMode::kTimingOnly);
      table.add_row(
          {std::to_string(launch),
           scl::format_fixed(static_cast<double>(r.total_cycles) / 1e6, 1),
           scl::format_fixed(
               100.0 * (static_cast<double>(r.total_cycles) - predicted) /
                   static_cast<double>(r.total_cycles),
               1) +
               "%"});
    }
    std::cout << table.to_text() << "\n";
  }

  // --- D: cone-model refinement ---------------------------------------------------
  {
    std::cout << "D. Analytical cone model: paper Eq. 8 vs per-kernel "
                 "geometry:\n";
    scl::TableWriter table(
        {"benchmark", "refined pred (ms)", "Eq.8 pred (ms)", "measured (ms)"});
    for (const char* name : {"Jacobi-2D", "Jacobi-3D", "HotSpot-2D"}) {
      const auto p = scl::stencil::find_benchmark(name).make_paper_scale();
      scl::core::OptimizerOptions options;
      const scl::core::Optimizer optimizer(p, options);
      const auto het =
          optimizer.optimize_heterogeneous(optimizer.optimize_baseline());
      const scl::model::PerfModel refined(p, device,
                                          scl::model::ConeMode::kRefined);
      const scl::model::PerfModel exact(p, device,
                                        scl::model::ConeMode::kPaperExact);
      const Executor executor(device);
      const SimResult r = executor.run(p, het.config, SimMode::kTimingOnly);
      table.add_row({name,
                     scl::format_fixed(refined.predict(het.config).total_ms, 1),
                     scl::format_fixed(exact.predict(het.config).total_ms, 1),
                     scl::format_fixed(r.total_ms, 1)});
    }
    std::cout << table.to_text()
              << "\nEq. 8 charges the slowest kernel the full Delta-w cone "
                 "in every\ndimension and so over-predicts; the per-kernel "
                 "geometry tracks the\nsimulator while preserving the "
                 "paper's underestimation property.\n";
  }
  return 0;
}
