// Regenerates the paper's Table 3: the main experimental result.
//
// For every benchmark of Table 2 at the paper's input scale:
//   * run the baseline design-space exploration (the Nacci et al. flow),
//   * run the heterogeneous DSE under the baseline's resource budget,
//   * simulate both designs on the device model,
// and print the optimization parameters, total resource utilization, and
// the heterogeneous speedup, side by side with the paper's reported row.
//
// Expected shape (not absolute numbers — the substrate is a simulator):
// the heterogeneous design fuses deeper, uses the same DSPs, fewer BRAMs,
// and wins on every benchmark.
#include <cmath>
#include <iostream>

#include "core/framework.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

struct PaperRow {
  const char* name;
  std::int64_t base_h, het_h;
  const char* base_tile;
  const char* het_tile;
  const char* parallelism;
  double speedup;
};

// Table 3 as printed in the paper.
const PaperRow kPaperRows[] = {
    {"Jacobi-1D", 128, 512, "4096", "4096", "16", 1.19},
    {"Jacobi-2D", 32, 63, "128x128", "120x120", "4x4", 1.58},
    {"Jacobi-3D", 6, 16, "16x32x32", "16x28x28", "4x2x2", 2.05},
    {"HotSpot-2D", 32, 69, "256x256", "248x248", "4x4", 1.35},
    {"HotSpot-3D", 6, 16, "32x32x32", "30x30x30", "4x2x2", 1.97},
    {"FDTD-2D", 12, 23, "64x64", "60x60", "4x4", 1.48},
    {"FDTD-3D", 4, 10, "16x32x16", "14x32x15", "2x4x2", 1.90},
};

std::string tile_string(const scl::sim::DesignConfig& c, int dims) {
  std::vector<std::string> parts;
  for (int d = 0; d < dims; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    // Report the slowest (edge) tile, as the paper's footnote 1 does.
    parts.push_back(
        std::to_string(c.tile_size[ds] - c.edge_shrink[ds]));
  }
  return scl::join(parts, "x");
}

std::string par_string(const scl::sim::DesignConfig& c, int dims) {
  std::vector<std::string> parts;
  for (int d = 0; d < dims; ++d) {
    parts.push_back(std::to_string(c.parallelism[static_cast<std::size_t>(d)]));
  }
  return scl::join(parts, "x");
}

}  // namespace

int main() {
  std::cout << "==== Table 3: Experimental Results of the Stencil Benchmark "
               "Suite ====\n\n";
  scl::TableWriter table({"Benchmark", "Design", "#Fused", "Tile", "Par.",
                          "FF", "LUT", "DSP", "BRAM18", "Perf."});
  scl::TableWriter compare({"Benchmark", "speedup (ours)", "speedup (paper)",
                            "fused base->het (ours)", "(paper)"});
  double geo_ours = 1.0;
  double geo_paper = 1.0;
  int rows = 0;

  for (const PaperRow& paper : kPaperRows) {
    const scl::stencil::BenchmarkInfo& info =
        scl::stencil::find_benchmark(paper.name);
    const scl::stencil::StencilProgram program = info.make_paper_scale();
    scl::core::FrameworkOptions options;
    options.generate_code = false;
    const scl::core::Framework framework(program, options);
    scl::core::SynthesisReport rep;
    try {
      rep = framework.synthesize();
    } catch (const scl::Error& e) {
      std::cout << info.name << ": FAILED (" << e.what() << ")\n";
      continue;
    }

    auto add = [&](const char* label, const scl::core::DesignPoint& p,
                   double perf) {
      table.add_row({info.name, label,
                     std::to_string(p.config.fused_iterations),
                     tile_string(p.config, info.dims),
                     par_string(p.config, info.dims),
                     std::to_string(p.resources.total.ff),
                     std::to_string(p.resources.total.lut),
                     std::to_string(p.resources.total.dsp),
                     std::to_string(p.resources.total.bram18),
                     scl::format_fixed(perf, 2)});
    };
    add("Baseline", rep.baseline, 1.0);
    add("Heterogeneous", rep.heterogeneous, rep.speedup);

    compare.add_row(
        {info.name, scl::format_speedup(rep.speedup),
         scl::format_speedup(paper.speedup),
         scl::str_cat(rep.baseline.config.fused_iterations, " -> ",
                      rep.heterogeneous.config.fused_iterations),
         scl::str_cat(paper.base_h, " -> ", paper.het_h)});
    geo_ours *= rep.speedup;
    geo_paper *= paper.speedup;
    ++rows;
  }

  std::cout << table.to_text() << "\n";
  std::cout << "---- comparison with the paper's Table 3 ----\n\n"
            << compare.to_text() << "\n";
  if (rows > 0) {
    std::cout << "geomean speedup: ours "
              << scl::format_speedup(std::pow(geo_ours, 1.0 / rows))
              << ", paper "
              << scl::format_speedup(std::pow(geo_paper, 1.0 / rows))
              << " (paper reports 1.65x arithmetic mean)\n";
  }
  std::cout <<
      "\nNotes: the heterogeneous design fuses deeper than the baseline,\n"
      "ties on DSPs and saves BRAM on every benchmark, as in the paper.\n"
      "Absolute speedups are lower than the paper's for the 3-D stencils:\n"
      "our heterogeneous kernels keep the (correctness-required) shrinking\n"
      "cones on region-exterior faces, whose buffers cap the fusion depth;\n"
      "see EXPERIMENTS.md for the full discussion.\n";
  return 0;
}
