// What-if study across devices (extension beyond the paper).
//
// Re-runs the full flow for Jacobi-2D and HotSpot-2D on each device in the
// catalog: the paper's board (Virtex-7 690T), the smaller 485T, and a
// larger UltraScale part. Shows how the DSE adapts tile/fusion choices to
// the resource budget and how the heterogeneous advantage persists.
#include <iostream>

#include "core/framework.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "==== Device what-if study (extension) ====\n\n";
  scl::TableWriter table({"Benchmark", "Device", "base h/tile", "het h",
                          "base ms", "het ms", "speedup", "BRAM18 b->h"});
  for (const char* name : {"Jacobi-2D", "HotSpot-2D"}) {
    const auto program = scl::stencil::find_benchmark(name).make_paper_scale();
    for (const scl::fpga::DeviceSpec& device : scl::fpga::device_catalog()) {
      scl::core::FrameworkOptions options;
      options.optimizer.device = device;
      options.generate_code = false;
      const scl::core::Framework framework(program, options);
      try {
        const scl::core::SynthesisReport rep = framework.synthesize();
        table.add_row(
            {name, device.name,
             scl::str_cat(rep.baseline.config.fused_iterations, " / ",
                          rep.baseline.config.tile_size[0]),
             std::to_string(rep.heterogeneous.config.fused_iterations),
             scl::format_fixed(rep.baseline_sim.total_ms, 1),
             scl::format_fixed(rep.heterogeneous_sim.total_ms, 1),
             scl::format_speedup(rep.speedup),
             scl::str_cat(rep.baseline.resources.total.bram18, " -> ",
                          rep.heterogeneous.resources.total.bram18)});
      } catch (const scl::Error&) {
        table.add_row({name, device.name, "-", "-", "-", "-",
                       "infeasible", "-"});
      }
    }
  }
  std::cout << table.to_text()
            << "\nLarger parts admit deeper fusion (more BRAM for the cone\n"
               "buffers) and faster clocks; the heterogeneous design keeps\n"
               "its advantage on every feasible target.\n";
  return 0;
}
