// Regenerates the paper's Figure 7: validation of the performance model.
//
// For the six benchmarks the paper plots (Jacobi-2D/3D, HotSpot-2D/3D,
// FDTD-2D/3D), sweep the number of fused iterations for the heterogeneous
// design and print the model's predicted latency against the simulated
// ("measured") latency. The paper's findings, which this harness
// reproduces: the model underestimates (mainly the unmodeled sequential
// kernel-launch delay), the average error is small (~12% in the paper),
// and the model identifies the same optimal fusion depth as the
// measurement.
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/optimizer.hpp"
#include "model/perf_model.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "support/math.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "==== Figure 7: Validation of the Performance Model ====\n\n";
  const scl::fpga::DeviceSpec device = scl::fpga::virtex7_690t();
  double error_sum = 0.0;
  int error_count = 0;
  int optima_agree = 0;
  int optima_total = 0;

  for (const char* name : {"Jacobi-2D", "Jacobi-3D", "HotSpot-2D",
                           "HotSpot-3D", "FDTD-2D", "FDTD-3D"}) {
    const auto& info = scl::stencil::find_benchmark(name);
    const auto program = info.make_paper_scale();

    // Anchor the sweep at the framework-optimized heterogeneous design and
    // vary only the fused depth, exactly as the paper's figure does.
    scl::core::OptimizerOptions opt_options;
    const scl::core::Optimizer optimizer(program, opt_options);
    const scl::core::DesignPoint baseline = optimizer.optimize_baseline();
    scl::sim::DesignConfig config =
        optimizer.optimize_heterogeneous(baseline).config;
    const std::string design_summary = config.summary(program.dims());

    const scl::model::PerfModel model(program, device);
    const scl::sim::Executor executor(device);

    scl::TableWriter table(
        {"fused h", "predicted (ms)", "measured (ms)", "underest."});
    std::int64_t best_pred_h = 0, best_meas_h = 0;
    double best_pred = 0.0, best_meas = 0.0;
    const std::vector<std::int64_t> sweep{1, 2, 4, 8, 16, 32, 64, 128};
    for (const std::int64_t h : sweep) {
      if (h > program.iterations()) break;
      config.fused_iterations = h;
      const scl::model::Prediction pred = model.predict(config);
      const scl::sim::SimResult sim =
          executor.run(program, config, scl::sim::SimMode::kTimingOnly);
      const double measured = static_cast<double>(sim.total_cycles);
      const double err = scl::relative_error(pred.total_cycles, measured);
      error_sum += err;
      ++error_count;
      table.add_row({std::to_string(h),
                     scl::format_fixed(pred.total_ms, 1),
                     scl::format_fixed(sim.total_ms, 1),
                     scl::format_fixed(100.0 * err, 1) + "%"});
      if (best_pred_h == 0 || pred.total_cycles < best_pred) {
        best_pred = pred.total_cycles;
        best_pred_h = h;
      }
      if (best_meas_h == 0 || measured < best_meas) {
        best_meas = measured;
        best_meas_h = h;
      }
    }
    ++optima_total;
    if (best_pred_h == best_meas_h) ++optima_agree;
    std::cout << name << " (" << design_summary << "):\n"
              << table.to_text() << "model optimum h=" << best_pred_h
              << ", measured optimum h=" << best_meas_h
              << (best_pred_h == best_meas_h ? " — agree" : " — DIFFER")
              << "\n\n";
  }

  std::cout << "mean prediction error: "
            << scl::format_fixed(100.0 * error_sum / error_count, 1)
            << "% (paper: 12%), optima agreement: " << optima_agree << "/"
            << optima_total << " benchmarks (paper: all)\n"
            << "The model underestimates throughout — the launch delay the\n"
               "paper deliberately leaves unmodeled (SS5.6) is charged by\n"
               "the simulator.\n";
  return 0;
}
