// Design-space-exploration throughput: candidates/sec and parallel
// speedup of the evaluation engine.
//
// For every benchmark of Table 2 at the paper's input scale, runs the
// full DSE across both design families — the pipe-tiling searches
// (baseline + heterogeneous under the baseline's budget) and the
// temporal-blocked shift-register search — serially and at increasing
// thread counts. Each (thread count, family) pair gets two rows:
//
//   cold — a fresh optimizer (empty eval cache): the real search cost.
//   warm — the same searches replayed on the same optimizer, so every
//          candidate is served from the eval cache. This is the
//          memoization ceiling, and the row whose cache_hit_rate
//          actually exercises the hit path (a cold run is ~all misses).
//
// Before any timing is trusted, the chosen designs — in both families —
// are asserted bit-identical across thread counts AND with
// branch-and-bound pruning disabled — the two halves of the determinism
// contract.
//
// After the thread sweep, an HBM device leg runs one serial cold DSE
// per multi-bank part (xcu280, s10mx) per benchmark: those devices open
// the spatial-replication axis (R PE copies on disjoint bank groups),
// so their candidate spaces — and throughputs — differ from the DDR
// rows above. Their JSON rows carry a "device" field, which the perf
// gate folds into the key and treats as load-bearing: a vanished
// device row fails CI even at sub-floor wall times.
//
// Output: a human-readable table on stdout plus one JSON row per
// (kernel, thread count, mode, family[, device]) appended to
// BENCH_dse.json in the working directory, for the benchmark
// trajectory.
//
//   --json <file>      write rows there instead, truncating first (the
//                      perf-gate baselines want a fresh file per run)
//   --threads <list>   comma-separated thread counts (default: 1,2,4,8
//                      clamped to the hardware); the serial run always
//                      happens first as the determinism/speedup base
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "fpga/device.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

struct DseRun {
  scl::core::DesignPoint baseline;
  scl::core::DesignPoint heterogeneous;
  scl::core::DesignPoint temporal;
  scl::core::DseStats spatial_stats;   // baseline + heterogeneous searches
  scl::core::DseStats temporal_stats;  // temporal cascade search
};

scl::core::DseStats diff(const scl::core::DseStats& after,
                         const scl::core::DseStats& before) {
  scl::core::DseStats d = after;
  d.candidates_evaluated -= before.candidates_evaluated;
  d.candidates_pruned -= before.candidates_pruned;
  d.cache_hits -= before.cache_hits;
  d.cache_misses -= before.cache_misses;
  d.wall_seconds -= before.wall_seconds;
  return d;
}

/// One full DSE on `optimizer` — both families — reporting only this
/// run's stat deltas, split per family. The counters (and the cache)
/// accumulate across runs, which is exactly what the warm-replay row
/// wants.
DseRun run_searches(const scl::core::Optimizer& optimizer) {
  scl::core::DseStats mark = optimizer.dse_stats();
  DseRun run;
  run.baseline = optimizer.optimize_baseline();
  run.heterogeneous = optimizer.optimize_heterogeneous(run.baseline);
  run.spatial_stats = diff(optimizer.dse_stats(), mark);
  mark = optimizer.dse_stats();
  run.temporal = optimizer.optimize_temporal();
  run.temporal_stats = diff(optimizer.dse_stats(), mark);
  return run;
}

/// run_searches with heterogeneous infeasibility tolerated: on banked
/// parts the baseline winner may spend the whole BRAM budget on spatial
/// replication, leaving no pipe redistribution inside the baseline cap.
/// The baseline then stands in as the pipe-tiling winner, matching
/// Framework::synthesize's fallback.
DseRun run_searches_banked(const scl::core::Optimizer& optimizer) {
  scl::core::DseStats mark = optimizer.dse_stats();
  DseRun run;
  run.baseline = optimizer.optimize_baseline();
  try {
    run.heterogeneous = optimizer.optimize_heterogeneous(run.baseline);
  } catch (const scl::ResourceError&) {
    run.heterogeneous = run.baseline;
  }
  run.spatial_stats = diff(optimizer.dse_stats(), mark);
  mark = optimizer.dse_stats();
  run.temporal = optimizer.optimize_temporal();
  run.temporal_stats = diff(optimizer.dse_stats(), mark);
  return run;
}

bool same_designs(const DseRun& a, const DseRun& b) {
  return a.baseline.config == b.baseline.config &&
         a.heterogeneous.config == b.heterogeneous.config &&
         a.temporal.config == b.temporal.config &&
         a.baseline.prediction.total_cycles ==
             b.baseline.prediction.total_cycles &&
         a.heterogeneous.prediction.total_cycles ==
             b.heterogeneous.prediction.total_cycles &&
         a.temporal.prediction.total_cycles ==
             b.temporal.prediction.total_cycles;
}

std::string json_row(const std::string& kernel, const char* mode,
                     const char* family, const scl::core::DseStats& stats,
                     double speedup, const std::string& device = "",
                     int replication = 0) {
  // Rows on the default device carry no "device" field so historical
  // perf-gate keys stay stable; device-tagged rows get a suffixed key
  // (and the gate fails hard when a tagged row vanishes).
  const std::string device_field =
      device.empty() ? std::string()
                     : scl::str_cat(",\"device\":\"", device, "\"");
  const std::string replication_field =
      replication > 0 ? scl::str_cat(",\"replication\":", replication)
                      : std::string();
  return scl::str_cat(
      "{\"bench\":\"dse\",\"kernel\":\"", kernel, "\",\"mode\":\"", mode,
      "\",\"family\":\"", family, "\"", device_field,
      ",\"threads\":", stats.threads,
      ",\"candidates\":", stats.candidates_evaluated,
      ",\"pruned\":", stats.candidates_pruned,
      ",\"cache_hit_rate\":", scl::format_fixed(stats.cache_hit_rate(), 4),
      ",\"wall_seconds\":", scl::format_fixed(stats.wall_seconds, 4),
      ",\"candidates_per_sec\":",
      scl::format_fixed(stats.candidates_per_sec(), 1),
      ",\"speedup_vs_serial\":", scl::format_fixed(speedup, 3),
      replication_field, "}");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<int> requested_threads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      for (const std::string& tok : scl::split(argv[++i], ',')) {
        const int t = std::stoi(tok);
        if (t < 1) {
          std::cerr << "--threads wants counts >= 1\n";
          return 2;
        }
        requested_threads.push_back(t);
      }
    } else {
      std::cerr << "usage: bench_dse [--json <file>] [--threads <list>]\n";
      return 2;
    }
  }

  std::cout << "==== DSE throughput: parallel candidate evaluation ====\n\n";
  const int max_threads = scl::ThreadPool::resolve_threads(0);
  std::vector<int> thread_counts = requested_threads;
  if (thread_counts.empty()) {
    thread_counts.push_back(1);
    for (const int t : {2, 4, 8}) {
      if (t <= max_threads) thread_counts.push_back(t);
    }
  }
  std::cout << "hardware threads available: " << max_threads << "\n\n";

  scl::TableWriter table({"Benchmark", "Threads", "Mode", "Family",
                          "Candidates", "Pruned", "Cache hits", "Wall (s)",
                          "Cand./s", "Speedup"});
  std::ofstream json(json_path.empty() ? "BENCH_dse.json" : json_path,
                     json_path.empty() ? std::ios::app : std::ios::trunc);
  bool deterministic = true;

  for (const scl::stencil::BenchmarkInfo& info :
       scl::stencil::paper_benchmarks()) {
    const scl::stencil::StencilProgram program = info.make_paper_scale();

    scl::core::OptimizerOptions serial_options;
    serial_options.threads = 1;
    const scl::core::Optimizer serial_optimizer(program, serial_options);
    DseRun serial_cold;
    try {
      serial_cold = run_searches(serial_optimizer);
    } catch (const scl::Error& e) {
      std::cout << info.name << ": FAILED (" << e.what() << ")\n";
      continue;
    }
    const DseRun serial_warm = run_searches(serial_optimizer);

    // Determinism half 2: branch-and-bound may only skip candidates that
    // provably cannot win, so the exhaustive search must choose the
    // byte-identical designs.
    scl::core::OptimizerOptions exhaustive_options = serial_options;
    exhaustive_options.prune = false;
    const scl::core::Optimizer exhaustive(program, exhaustive_options);
    if (!same_designs(run_searches(exhaustive), serial_cold)) {
      std::cout << info.name
                << ": NONDETERMINISTIC — pruning changed the optimum\n";
      deterministic = false;
    }

    for (const int threads : thread_counts) {
      DseRun cold;
      DseRun warm;
      if (threads == 1) {
        cold = serial_cold;
        warm = serial_warm;
      } else {
        scl::core::OptimizerOptions options;
        options.threads = threads;
        const scl::core::Optimizer optimizer(program, options);
        cold = run_searches(optimizer);
        warm = run_searches(optimizer);
        if (!same_designs(cold, serial_cold)) {
          std::cout << info.name << ": NONDETERMINISTIC at " << threads
                    << " threads\n";
          deterministic = false;
        }
      }
      // Speedups compare like with like: cold vs serial cold, warm vs
      // serial warm — per family, since the two searches sweep spaces of
      // very different sizes.
      auto speedup_vs = [](const scl::core::DseStats& run,
                           const scl::core::DseStats& base) {
        return run.wall_seconds > 0.0 ? base.wall_seconds / run.wall_seconds
                                      : 0.0;
      };
      const struct {
        const char* mode;
        const char* family;
        const scl::core::DseStats* stats;
        double speedup;
      } rows[] = {
          {"cold", "pipe-tiling", &cold.spatial_stats,
           speedup_vs(cold.spatial_stats, serial_cold.spatial_stats)},
          {"cold", "temporal-shift", &cold.temporal_stats,
           speedup_vs(cold.temporal_stats, serial_cold.temporal_stats)},
          {"warm", "pipe-tiling", &warm.spatial_stats,
           speedup_vs(warm.spatial_stats, serial_warm.spatial_stats)},
          {"warm", "temporal-shift", &warm.temporal_stats,
           speedup_vs(warm.temporal_stats, serial_warm.temporal_stats)},
      };
      for (const auto& row : rows) {
        const scl::core::DseStats& stats = *row.stats;
        table.add_row(
            {info.name, std::to_string(threads), row.mode, row.family,
             std::to_string(stats.candidates_evaluated),
             std::to_string(stats.candidates_pruned),
             scl::str_cat(scl::format_fixed(100.0 * stats.cache_hit_rate(), 1),
                          "%"),
             scl::format_fixed(stats.wall_seconds, 3),
             scl::format_thousands(
                 static_cast<long long>(stats.candidates_per_sec())),
             scl::format_speedup(row.speedup)});
        if (json) {
          json << json_row(info.name, row.mode, row.family, stats,
                           row.speedup)
               << "\n";
        }
      }
    }
  }

  std::cout << table.to_text() << "\n";

  // HBM device leg: the replication axis (spatial PE copies on disjoint
  // bank groups) only opens on multi-bank parts, so every row above —
  // all on the default DDR board — leaves it unexercised. One serial
  // cold DSE per HBM part per benchmark pins the throughput of the
  // widened space, plus the replication factor each winner settled on.
  // These rows carry a "device" field; scripts/perf_gate.py folds it
  // into the key and fails hard when a tagged row goes missing.
  std::cout << "==== HBM device leg: replicated design spaces ====\n\n";
  scl::TableWriter hbm_table({"Benchmark", "Device", "Family", "Candidates",
                              "Pruned", "Wall (s)", "Cand./s", "Winner R"});
  for (const char* device_name : {"xcu280", "s10mx"}) {
    for (const scl::stencil::BenchmarkInfo& info :
         scl::stencil::paper_benchmarks()) {
      const scl::stencil::StencilProgram program = info.make_paper_scale();
      scl::core::OptimizerOptions options;
      options.threads = 1;
      options.device = scl::fpga::find_device(device_name);
      const scl::core::Optimizer optimizer(program, options);
      DseRun cold;
      try {
        cold = run_searches_banked(optimizer);
      } catch (const scl::Error& e) {
        std::cout << info.name << " on " << device_name << ": FAILED ("
                  << e.what() << ")\n";
        deterministic = false;
        continue;
      }
      // The determinism contract must hold on the widened space too.
      scl::core::OptimizerOptions exhaustive_options = options;
      exhaustive_options.prune = false;
      const scl::core::Optimizer exhaustive(program, exhaustive_options);
      if (!same_designs(run_searches_banked(exhaustive), cold)) {
        std::cout << info.name << " on " << device_name
                  << ": NONDETERMINISTIC — pruning changed the optimum\n";
        deterministic = false;
      }
      const struct {
        const char* family;
        const scl::core::DseStats* stats;
        int replication;
      } rows[] = {
          {"pipe-tiling", &cold.spatial_stats,
           cold.heterogeneous.config.replication},
          {"temporal-shift", &cold.temporal_stats,
           cold.temporal.config.replication},
      };
      for (const auto& row : rows) {
        const scl::core::DseStats& stats = *row.stats;
        hbm_table.add_row(
            {info.name, device_name, row.family,
             std::to_string(stats.candidates_evaluated),
             std::to_string(stats.candidates_pruned),
             scl::format_fixed(stats.wall_seconds, 3),
             scl::format_thousands(
                 static_cast<long long>(stats.candidates_per_sec())),
             std::to_string(row.replication)});
        if (json) {
          json << json_row(info.name, "cold", row.family, stats, 1.0,
                           device_name, row.replication)
               << "\n";
        }
      }
    }
  }
  std::cout << hbm_table.to_text() << "\n";

  std::cout << (deterministic
                    ? "determinism: all thread counts (and pruning on/off) "
                      "chose identical designs\n"
                    : "determinism: FAILED — see rows above\n")
            << "\nNotes: cold rows start from an empty eval cache (the real\n"
               "search cost); warm rows replay the same searches against the\n"
               "populated cache (the memoization ceiling). Speedup compares\n"
               "against the serial row of the same mode and is bounded by\n"
               "the machine's core count (see 'hardware threads available'\n"
               "above).\n";
  return deterministic ? 0 : 1;
}
