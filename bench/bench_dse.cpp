// Design-space-exploration throughput: candidates/sec and parallel
// speedup of the evaluation engine.
//
// For every benchmark of Table 2 at the paper's input scale, runs the
// full DSE (baseline search + heterogeneous search under the baseline's
// budget) serially and at increasing thread counts, with a cold eval
// cache per run, and reports wall-clock, candidates/sec and the speedup
// over one thread. The chosen designs are asserted bit-identical across
// thread counts — the determinism contract — before any timing is
// trusted.
//
// Output: a human-readable table on stdout plus one JSON row per
// (kernel, thread count) appended to BENCH_dse.json in the working
// directory, for the benchmark trajectory.
//
//   --json <file>      write rows there instead, truncating first (the
//                      perf-gate baselines want a fresh file per run)
//   --threads <list>   comma-separated thread counts (default: 1,2,4,8
//                      clamped to the hardware); the serial run always
//                      happens first as the determinism/speedup base
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

struct DseRun {
  scl::core::DesignPoint baseline;
  scl::core::DesignPoint heterogeneous;
  scl::core::DseStats stats;
};

DseRun run_dse(const scl::stencil::StencilProgram& program, int threads) {
  scl::core::OptimizerOptions options;
  options.threads = threads;
  const scl::core::Optimizer optimizer(program, options);
  DseRun run;
  run.baseline = optimizer.optimize_baseline();
  run.heterogeneous = optimizer.optimize_heterogeneous(run.baseline);
  run.stats = optimizer.dse_stats();
  return run;
}

std::string json_row(const std::string& kernel, const DseRun& run,
                     double speedup) {
  return scl::str_cat(
      "{\"bench\":\"dse\",\"kernel\":\"", kernel,
      "\",\"threads\":", run.stats.threads,
      ",\"candidates\":", run.stats.candidates_evaluated,
      ",\"cache_hit_rate\":", scl::format_fixed(run.stats.cache_hit_rate(), 4),
      ",\"wall_seconds\":", scl::format_fixed(run.stats.wall_seconds, 4),
      ",\"candidates_per_sec\":",
      scl::format_fixed(run.stats.candidates_per_sec(), 1),
      ",\"speedup_vs_serial\":", scl::format_fixed(speedup, 3), "}");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<int> requested_threads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      for (const std::string& tok : scl::split(argv[++i], ',')) {
        const int t = std::stoi(tok);
        if (t < 1) {
          std::cerr << "--threads wants counts >= 1\n";
          return 2;
        }
        requested_threads.push_back(t);
      }
    } else {
      std::cerr << "usage: bench_dse [--json <file>] [--threads <list>]\n";
      return 2;
    }
  }

  std::cout << "==== DSE throughput: parallel candidate evaluation ====\n\n";
  const int max_threads = scl::ThreadPool::resolve_threads(0);
  std::vector<int> thread_counts = requested_threads;
  if (thread_counts.empty()) {
    thread_counts.push_back(1);
    for (const int t : {2, 4, 8}) {
      if (t <= max_threads) thread_counts.push_back(t);
    }
  }
  std::cout << "hardware threads available: " << max_threads << "\n\n";

  scl::TableWriter table({"Benchmark", "Threads", "Candidates", "Cache hits",
                          "Wall (s)", "Cand./s", "Speedup"});
  std::ofstream json(json_path.empty() ? "BENCH_dse.json" : json_path,
                     json_path.empty() ? std::ios::app : std::ios::trunc);
  bool deterministic = true;

  for (const scl::stencil::BenchmarkInfo& info :
       scl::stencil::paper_benchmarks()) {
    const scl::stencil::StencilProgram program = info.make_paper_scale();
    DseRun serial;
    try {
      serial = run_dse(program, 1);
    } catch (const scl::Error& e) {
      std::cout << info.name << ": FAILED (" << e.what() << ")\n";
      continue;
    }
    for (const int threads : thread_counts) {
      const DseRun run = threads == 1 ? serial : run_dse(program, threads);
      if (run.baseline.config != serial.baseline.config ||
          run.heterogeneous.config != serial.heterogeneous.config) {
        std::cout << info.name << ": NONDETERMINISTIC at " << threads
                  << " threads\n";
        deterministic = false;
      }
      const double speedup =
          run.stats.wall_seconds > 0.0
              ? serial.stats.wall_seconds / run.stats.wall_seconds
              : 0.0;
      table.add_row(
          {info.name, std::to_string(threads),
           std::to_string(run.stats.candidates_evaluated),
           scl::str_cat(scl::format_fixed(100.0 * run.stats.cache_hit_rate(), 1),
                        "%"),
           scl::format_fixed(run.stats.wall_seconds, 3),
           scl::format_thousands(static_cast<long long>(
               run.stats.candidates_per_sec())),
           scl::format_speedup(speedup)});
      if (json) json << json_row(info.name, run, speedup) << "\n";
    }
  }

  std::cout << table.to_text() << "\n";
  std::cout << (deterministic
                    ? "determinism: all thread counts chose identical designs\n"
                    : "determinism: FAILED — see rows above\n")
            << "\nNotes: each run starts with a cold eval cache; the serial\n"
               "row is the pre-refactor single-threaded cost. Speedup is\n"
               "bounded by the machine's core count (see 'hardware threads\n"
               "available' above).\n";
  return deterministic ? 0 : 1;
}
