// Google-benchmark microbenchmarks for the framework's own substrates:
// how fast the golden executor, the pipes, the DES, the analytical model
// and the code generator run on the host. These guard against performance
// regressions in the tooling itself (the DSE evaluates thousands of model
// queries; Figure-7 sweeps run dozens of simulations).
#include <benchmark/benchmark.h>

#include "codegen/opencl_emitter.hpp"
#include "model/perf_model.hpp"
#include "ocl/pipe.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "stencil/reference.hpp"

namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;

DesignConfig hetero_2d() {
  DesignConfig c;
  c.kind = DesignKind::kHeterogeneous;
  c.fused_iterations = 16;
  c.parallelism = {2, 2, 1};
  c.tile_size = {64, 64, 1};
  c.unroll = 8;
  return c;
}

void BM_ReferenceExecutorJacobi2d(benchmark::State& state) {
  const auto program = scl::stencil::make_jacobi2d(128, 128, 4);
  for (auto _ : state) {
    scl::stencil::ReferenceExecutor exec(program);
    exec.run(4);
    benchmark::DoNotOptimize(exec.field(0).data());
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128 * 4);
}
BENCHMARK(BM_ReferenceExecutorJacobi2d);

void BM_ReferenceExecutorFdtd3d(benchmark::State& state) {
  const auto program = scl::stencil::make_fdtd3d(24, 24, 24, 2);
  for (auto _ : state) {
    scl::stencil::ReferenceExecutor exec(program);
    exec.run(2);
    benchmark::DoNotOptimize(exec.field(0).data());
  }
  state.SetItemsProcessed(state.iterations() * 24 * 24 * 24 * 2);
}
BENCHMARK(BM_ReferenceExecutorFdtd3d);

void BM_PipeThroughput(benchmark::State& state) {
  const std::vector<float> chunk(256, 1.0f);
  for (auto _ : state) {
    scl::ocl::Pipe pipe("bench", 512, 2);
    std::int64_t clock = 0;
    for (int round = 0; round < 64; ++round) {
      const auto w = pipe.write(chunk, 0, clock);
      const auto r = pipe.read(w.written, clock);
      clock = r.reader_clock;
    }
    benchmark::DoNotOptimize(clock);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 256);
}
BENCHMARK(BM_PipeThroughput);

void BM_FunctionalSimJacobi2d(benchmark::State& state) {
  const auto program = scl::stencil::make_jacobi2d(64, 64, 8);
  DesignConfig config = hetero_2d();
  config.tile_size = {16, 16, 1};
  config.fused_iterations = 4;
  const scl::sim::Executor exec(scl::fpga::virtex7_690t());
  for (auto _ : state) {
    const auto result =
        exec.run(program, config, scl::sim::SimMode::kFunctional);
    benchmark::DoNotOptimize(result.total_cycles);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 8);
}
BENCHMARK(BM_FunctionalSimJacobi2d);

void BM_TimingSimPaperScaleJacobi2d(benchmark::State& state) {
  const auto program = scl::stencil::make_jacobi2d(2048, 2048, 1024);
  DesignConfig config = hetero_2d();
  config.tile_size = {128, 128, 1};
  config.parallelism = {4, 4, 1};
  config.fused_iterations = 32;
  const scl::sim::Executor exec(scl::fpga::virtex7_690t());
  for (auto _ : state) {
    const auto result =
        exec.run(program, config, scl::sim::SimMode::kTimingOnly);
    benchmark::DoNotOptimize(result.total_cycles);
  }
}
BENCHMARK(BM_TimingSimPaperScaleJacobi2d);

void BM_AnalyticalModelPredict(benchmark::State& state) {
  const auto program = scl::stencil::make_hotspot3d(512, 512, 64, 500);
  const scl::model::PerfModel model(program, scl::fpga::virtex7_690t());
  DesignConfig config;
  config.kind = DesignKind::kHeterogeneous;
  config.fused_iterations = 16;
  config.parallelism = {4, 2, 2};
  config.tile_size = {16, 16, 16};
  config.unroll = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_cycles(config));
  }
}
BENCHMARK(BM_AnalyticalModelPredict);

void BM_CodegenFdtd2d(benchmark::State& state) {
  const auto program = scl::stencil::make_fdtd2d(256, 256, 64);
  const DesignConfig config = hetero_2d();
  for (auto _ : state) {
    const auto code = scl::codegen::generate_opencl(
        program, config, scl::fpga::virtex7_690t());
    benchmark::DoNotOptimize(code.kernel_source.size());
  }
}
BENCHMARK(BM_CodegenFdtd2d);

void BM_FormulaEvaluate(benchmark::State& state) {
  const auto program = scl::stencil::make_hotspot2d(16, 16, 2);
  struct Reader final : scl::stencil::CellReader {
    float read(int, const scl::stencil::Offset&) const override {
      return 1.5f;
    }
  };
  const Reader reader;
  const auto& stage = program.stage(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage.update(reader));
  }
}
BENCHMARK(BM_FormulaEvaluate);

}  // namespace

BENCHMARK_MAIN();
