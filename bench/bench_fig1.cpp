// Quantifies the paper's Figure 1 motivation: how much redundant
// computation overlapped tiling (Fig. 1a/b) performs, how it explodes
// with cone depth and dimensionality, and how much of it pipe-based data
// sharing (Fig. 1c) removes — plus the pipe traffic that replaces it.
//
// Pure geometry (cell counts from the simulator's accounting), no timing:
// this is the paper's "the redundant computation increases with the depth
// of the cone and dimension of the stencils" claim with numbers attached.
#include <iostream>

#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using scl::sim::DesignConfig;
using scl::sim::DesignKind;

namespace {

scl::sim::SimResult run(const scl::stencil::StencilProgram& p,
                        DesignKind kind, std::int64_t h, int dims) {
  DesignConfig c;
  c.kind = kind;
  c.fused_iterations = h;
  for (int d = 0; d < dims; ++d) {
    c.parallelism[static_cast<std::size_t>(d)] = 2;
    c.tile_size[static_cast<std::size_t>(d)] = 32;
  }
  const scl::sim::Executor exec(scl::fpga::virtex7_690t());
  return exec.run(p, c, scl::sim::SimMode::kTimingOnly);
}

}  // namespace

int main() {
  std::cout << "==== Figure 1: redundant computation of overlapped tiling "
               "vs pipe-based sharing ====\n\n"
            << "32-cell tiles, 2 kernels per dimension; \"redundant\" = cone "
               "cells whose results are discarded.\n\n";
  scl::TableWriter table({"stencil", "fused h", "baseline redundant",
                          "hetero redundant", "removed", "pipe elems/cell"});
  struct Case {
    const char* name;
    int dims;
  };
  for (const Case cs : {Case{"Jacobi-1D", 1}, Case{"Jacobi-2D", 2},
                        Case{"Jacobi-3D", 3}}) {
    std::array<std::int64_t, 3> extents{1, 1, 1};
    for (int d = 0; d < cs.dims; ++d) {
      extents[static_cast<std::size_t>(d)] = 256;
    }
    const auto program =
        scl::stencil::find_benchmark(cs.name).make_scaled(extents, 64);
    for (const std::int64_t h : {4, 8, 16}) {
      const auto base = run(program, DesignKind::kBaseline, h, cs.dims);
      const auto het = run(program, DesignKind::kHeterogeneous, h, cs.dims);
      const double removed =
          base.cells_redundant > 0
              ? 100.0 *
                    static_cast<double>(base.cells_redundant -
                                        het.cells_redundant) /
                    static_cast<double>(base.cells_redundant)
              : 0.0;
      table.add_row(
          {cs.name, std::to_string(h),
           scl::format_fixed(100.0 * base.redundancy_ratio(), 1) + "%",
           scl::format_fixed(100.0 * het.redundancy_ratio(), 1) + "%",
           scl::format_fixed(removed, 1) + "%",
           scl::format_fixed(static_cast<double>(het.pipe_elements) /
                                 static_cast<double>(het.cells_owned),
                             3)});
    }
  }
  std::cout << table.to_text()
            << "\nOverlap grows with cone depth and dimensionality (the "
               "paper's motivation);\npipe sharing removes the overlap "
               "between sibling tiles at the cost of a\nfraction of an "
               "element of pipe traffic per cell update. The remaining\n"
               "heterogeneous redundancy is the region-exterior cone "
               "(Fig. 1c keeps it\non faces without a neighboring "
               "kernel).\n";
  return 0;
}
