// Regenerates the paper's Table 2: the stencil benchmark suite.
//
// Prints the suite exactly as the paper tabulates it (source, input size,
// iteration count) plus the structural features our feature extractor
// derives — the stencil properties that drive every later experiment.
#include <iostream>

#include "core/features.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "==== Table 2: Stencil Benchmark Suite Description ====\n\n";
  scl::TableWriter table({"Benchmark", "Source", "Input Size", "#Iterations",
                          "Fields", "Stages", "Ops/cell", "II"});
  for (const scl::stencil::BenchmarkInfo& info :
       scl::stencil::paper_benchmarks()) {
    std::vector<std::string> dims;
    for (int d = 0; d < info.dims; ++d) {
      dims.push_back(std::to_string(
          info.input_size[static_cast<std::size_t>(d)]));
    }
    // Features come from a scaled-down instance; they are size-independent.
    const scl::core::StencilFeatures features =
        scl::core::extract_features(info.make_scaled({8, 8, 8}, 2));
    table.add_row({info.name, info.source, scl::join(dims, " x "),
                   std::to_string(info.iterations),
                   std::to_string(features.field_count),
                   std::to_string(features.stage_count),
                   scl::str_cat(features.ops_per_cell.adds, "add+",
                                features.ops_per_cell.muls, "mul"),
                   std::to_string(features.hls.ii)});
  }
  std::cout << table.to_text();
  std::cout << "\nPaper reference (Table 2): same seven kernels, same input "
               "sizes and iteration counts.\n";
  return 0;
}
