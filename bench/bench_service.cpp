// Batched-service benchmark: cold vs. warm synthesis over the paper's
// seven-benchmark suite (Table 2).
//
// Pass 1 synthesizes every benchmark into a fresh artifact store (cold).
// Pass 2 replays the identical batch against the same store (warm) and
// must be served entirely from disk. The run fails unless the warm pass
// is at least 10x faster than the cold pass.
//
// A third pass synthesizes the suite cold into a second, independent
// store directory and compares the on-disk artifacts byte-for-byte —
// enforcing the serving layer's determinism contract (same request, same
// bytes, run after run).
//
// A daemon-mode pass then runs the same suite over the wire: an
// in-process Daemon on a Unix socket, driven by WireClient with the
// seven requests pipelined on one connection. Cold and warm wall times
// are measured end-to-end through socket framing + admission + the
// response writer, and a final overload pass against a daemon with a
// queue depth of 2 must shed structured "shed" responses instead of
// stalling or dropping frames.
//
//   --json <file>   write the JSONL result rows (one batch row, one
//                   "mode":"daemon" row) for the perf-gate baselines
//   --threads <n>   synthesis worker count (default: SCL_THREADS, then
//                   hardware concurrency)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/daemon.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "stencil/kernels.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace fs = std::filesystem;

namespace {

std::vector<scl::serve::JobRequest> suite_jobs() {
  std::vector<scl::serve::JobRequest> jobs;
  for (const auto& info : scl::stencil::paper_benchmarks()) {
    scl::serve::JobRequest job;
    job.name = info.name;
    job.program = std::make_shared<scl::stencil::StencilProgram>(
        info.make_paper_scale());
    jobs.push_back(std::move(job));
  }
  return jobs;
}

double run_suite_ms(scl::serve::SynthesisService& service,
                    const std::vector<scl::serve::JobRequest>& jobs,
                    bool expect_warm) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<scl::serve::JobResult> results = service.run_batch(jobs);
  const auto stop = std::chrono::steady_clock::now();
  for (const auto& result : results) {
    if (!result.ok) {
      throw scl::Error("synthesis of " + result.name +
                       " failed: " + result.error);
    }
    if (expect_warm && !result.from_cache) {
      throw scl::Error("expected a warm hit for " + result.name +
                       " but it was synthesized cold");
    }
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

std::vector<scl::serve::WireRequest> suite_requests() {
  std::vector<scl::serve::WireRequest> requests;
  std::int64_t id = 0;
  for (const auto& info : scl::stencil::paper_benchmarks()) {
    scl::serve::WireRequest request;
    request.id = ++id;
    request.benchmark = info.name;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Pipelines the whole suite on one connection (send all, then recv all
/// — responses come back in request order) and returns the wall time.
double run_wire_suite_ms(
    scl::serve::WireClient& client,
    const std::vector<scl::serve::WireRequest>& requests, bool expect_warm) {
  const auto start = std::chrono::steady_clock::now();
  for (const auto& request : requests) client.send(request);
  for (const auto& request : requests) {
    const scl::serve::WireResponse response = client.recv();
    if (!response.ok()) {
      throw scl::Error("daemon request " + std::to_string(request.id) +
                       " (" + response.name + ") failed: " + response.error);
    }
    if (expect_warm && !response.from_cache) {
      throw scl::Error("expected a warm daemon hit for " + response.name +
                       " but it was synthesized cold");
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

struct DaemonBenchResult {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  int overload_shed = 0;  ///< "shed" responses out of overload_jobs
  int overload_jobs = 0;
};

DaemonBenchResult run_daemon_bench(const fs::path& scratch, int threads) {
  DaemonBenchResult result;
  const std::vector<scl::serve::WireRequest> requests = suite_requests();

  {
    scl::serve::DaemonOptions options;
    options.socket_path = (scratch / "stencild.sock").string();
    options.service.store_dir = (scratch / "store-daemon").string();
    options.service.threads = threads;
    scl::serve::Daemon daemon(options);
    daemon.start();

    scl::serve::WireClient client;
    client.connect(options.socket_path);
    result.cold_ms = run_wire_suite_ms(client, requests,
                                       /*expect_warm=*/false);
    // Same best-of-N discipline as the batch pass: a warm wire replay is
    // a ~millisecond measurement, so take the steady-state best.
    result.warm_ms = run_wire_suite_ms(client, requests,
                                       /*expect_warm=*/true);
    for (int rep = 1; rep < 5; ++rep) {
      result.warm_ms = std::min(
          result.warm_ms,
          run_wire_suite_ms(client, requests, /*expect_warm=*/true));
    }
    client.close();
    daemon.request_stop();
    if (!daemon.wait_drained()) {
      throw scl::Error("daemon bench: drain was not clean");
    }
  }

  // Overload: a daemon whose global queue bound holds two requests gets
  // the suite pipelined cold in one burst. The contract under overload
  // is structured load-shedding — every frame is answered, the overflow
  // with status "shed", and the connection survives.
  {
    scl::serve::DaemonOptions options;
    options.socket_path = (scratch / "stencild-overload.sock").string();
    options.service.store_dir =
        (scratch / "store-daemon-overload").string();
    options.service.threads = threads;
    options.admission.max_queue_depth = 2;
    scl::serve::Daemon daemon(options);
    daemon.start();

    scl::serve::WireClient client;
    client.connect(options.socket_path);
    for (const auto& request : requests) client.send(request);
    result.overload_jobs = static_cast<int>(requests.size());
    for (int i = 0; i < result.overload_jobs; ++i) {
      const scl::serve::WireResponse response = client.recv();
      if (response.status == "shed") {
        ++result.overload_shed;
      } else if (!response.ok()) {
        throw scl::Error("daemon overload pass: unexpected status \"" +
                         response.status + "\": " + response.error);
      }
    }
    client.close();
    daemon.request_stop();
    if (!daemon.wait_drained()) {
      throw scl::Error("daemon overload pass: drain was not clean");
    }
  }
  return result;
}

/// Contents of every artifact file under `root`, keyed by file name.
std::map<std::string, std::string> slurp_store(const fs::path& root) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    files[entry.path().filename().string()] = body.str();
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: bench_service [--json <file>] [--threads <n>]\n";
      return 2;
    }
  }

  const fs::path scratch =
      fs::temp_directory_path() / "scl-bench-service";
  std::error_code ec;
  fs::remove_all(scratch, ec);

  try {
    const std::vector<scl::serve::JobRequest> jobs = suite_jobs();

    scl::serve::ServiceOptions options;
    options.store_dir = (scratch / "store-a").string();
    options.threads = threads;

    double cold_ms = 0.0;
    double warm_ms = 0.0;
    {
      scl::serve::SynthesisService service(options);
      cold_ms = run_suite_ms(service, jobs, /*expect_warm=*/false);
      // A single warm replay is a ~millisecond measurement dominated by
      // scheduler wakeup jitter; take the best of several so the perf
      // gate compares steady-state serving cost, not noise.
      warm_ms = run_suite_ms(service, jobs, /*expect_warm=*/true);
      for (int rep = 1; rep < 5; ++rep) {
        warm_ms = std::min(warm_ms, run_suite_ms(service, jobs,
                                                 /*expect_warm=*/true));
      }
      std::cout << service.stats().to_string() << "\n";
    }

    // Fresh process-equivalent: a second service over the same directory
    // must also serve the whole suite warm (persistence, not memory).
    {
      scl::serve::SynthesisService service(options);
      const double reopen_ms =
          run_suite_ms(service, jobs, /*expect_warm=*/true);
      std::cout << "reopened store: " << scl::format_fixed(reopen_ms, 1)
                << " ms, " << service.stats().store_hits << "/"
                << jobs.size() << " hits\n";
    }

    // Determinism: a cold run into an independent store must produce
    // byte-identical artifacts.
    scl::serve::ServiceOptions options_b = options;
    options_b.store_dir = (scratch / "store-b").string();
    {
      scl::serve::SynthesisService service(options_b);
      const double cold_b_ms =
          run_suite_ms(service, jobs, /*expect_warm=*/false);
      cold_ms = std::min(cold_ms, cold_b_ms);
    }
    const auto store_a = slurp_store(scratch / "store-a");
    const auto store_b = slurp_store(scratch / "store-b");
    if (store_a != store_b) {
      std::cerr << "FAIL: independent cold runs produced different "
                   "artifact bytes ("
                << store_a.size() << " vs " << store_b.size()
                << " files)\n";
      return 1;
    }

    const double ratio = warm_ms > 0.0 ? cold_ms / warm_ms : 1e9;
    std::cout << "cold: " << scl::format_fixed(cold_ms, 1)
              << " ms   warm: " << scl::format_fixed(warm_ms, 1)
              << " ms   speedup: " << scl::format_fixed(ratio, 1) << "x\n";
    std::cout << "artifacts byte-identical across independent cold runs ("
              << store_a.size() << " files)\n";

    const DaemonBenchResult daemon = run_daemon_bench(scratch, threads);
    const double daemon_ratio =
        daemon.warm_ms > 0.0 ? daemon.cold_ms / daemon.warm_ms : 1e9;
    std::cout << "daemon cold: " << scl::format_fixed(daemon.cold_ms, 1)
              << " ms   warm: " << scl::format_fixed(daemon.warm_ms, 1)
              << " ms   speedup: " << scl::format_fixed(daemon_ratio, 1)
              << "x   overload shed: " << daemon.overload_shed << "/"
              << daemon.overload_jobs << "\n";

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      out << scl::str_cat(
                 "{\"bench\":\"service\",\"threads\":",
                 scl::ThreadPool::resolve_threads(threads),
                 ",\"jobs\":", jobs.size(),
                 ",\"cold_ms\":", scl::format_fixed(cold_ms, 3),
                 ",\"warm_ms\":", scl::format_fixed(warm_ms, 3),
                 ",\"warm_speedup\":", scl::format_fixed(ratio, 3), "}")
          << "\n";
      out << scl::str_cat(
                 "{\"bench\":\"service\",\"mode\":\"daemon\",\"threads\":",
                 scl::ThreadPool::resolve_threads(threads),
                 ",\"jobs\":", jobs.size(),
                 ",\"cold_ms\":", scl::format_fixed(daemon.cold_ms, 3),
                 ",\"warm_ms\":", scl::format_fixed(daemon.warm_ms, 3),
                 ",\"warm_speedup\":", scl::format_fixed(daemon_ratio, 3),
                 ",\"overload_shed\":", daemon.overload_shed,
                 ",\"overload_jobs\":", daemon.overload_jobs, "}")
          << "\n";
    }
    if (ratio < 10.0) {
      std::cerr << "FAIL: warm pass must be >= 10x faster than cold\n";
      return 1;
    }
    if (daemon_ratio < 10.0) {
      std::cerr << "FAIL: warm daemon pass must be >= 10x faster than "
                   "cold\n";
      return 1;
    }
    if (daemon.overload_shed < 1) {
      std::cerr << "FAIL: the overload pass must shed at least one "
                   "request through the depth-2 admission bound\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    fs::remove_all(scratch, ec);
    return 1;
  }
  fs::remove_all(scratch, ec);
  return 0;
}
