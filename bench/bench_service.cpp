// Batched-service benchmark: cold vs. warm synthesis over the paper's
// seven-benchmark suite (Table 2).
//
// Pass 1 synthesizes every benchmark into a fresh artifact store (cold).
// Pass 2 replays the identical batch against the same store (warm) and
// must be served entirely from disk. The run fails unless the warm pass
// is at least 10x faster than the cold pass.
//
// A third pass synthesizes the suite cold into a second, independent
// store directory and compares the on-disk artifacts byte-for-byte —
// enforcing the serving layer's determinism contract (same request, same
// bytes, run after run).
//
//   --json <file>   write one JSON result row (cold/warm wall time and
//                   the warm speedup) for the perf-gate baselines
//   --threads <n>   synthesis worker count (default: SCL_THREADS, then
//                   hardware concurrency)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "stencil/kernels.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace fs = std::filesystem;

namespace {

std::vector<scl::serve::JobRequest> suite_jobs() {
  std::vector<scl::serve::JobRequest> jobs;
  for (const auto& info : scl::stencil::paper_benchmarks()) {
    scl::serve::JobRequest job;
    job.name = info.name;
    job.program = std::make_shared<scl::stencil::StencilProgram>(
        info.make_paper_scale());
    jobs.push_back(std::move(job));
  }
  return jobs;
}

double run_suite_ms(scl::serve::SynthesisService& service,
                    const std::vector<scl::serve::JobRequest>& jobs,
                    bool expect_warm) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<scl::serve::JobResult> results = service.run_batch(jobs);
  const auto stop = std::chrono::steady_clock::now();
  for (const auto& result : results) {
    if (!result.ok) {
      throw scl::Error("synthesis of " + result.name +
                       " failed: " + result.error);
    }
    if (expect_warm && !result.from_cache) {
      throw scl::Error("expected a warm hit for " + result.name +
                       " but it was synthesized cold");
    }
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Contents of every artifact file under `root`, keyed by file name.
std::map<std::string, std::string> slurp_store(const fs::path& root) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    files[entry.path().filename().string()] = body.str();
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: bench_service [--json <file>] [--threads <n>]\n";
      return 2;
    }
  }

  const fs::path scratch =
      fs::temp_directory_path() / "scl-bench-service";
  std::error_code ec;
  fs::remove_all(scratch, ec);

  try {
    const std::vector<scl::serve::JobRequest> jobs = suite_jobs();

    scl::serve::ServiceOptions options;
    options.store_dir = (scratch / "store-a").string();
    options.threads = threads;

    double cold_ms = 0.0;
    double warm_ms = 0.0;
    {
      scl::serve::SynthesisService service(options);
      cold_ms = run_suite_ms(service, jobs, /*expect_warm=*/false);
      // A single warm replay is a ~millisecond measurement dominated by
      // scheduler wakeup jitter; take the best of several so the perf
      // gate compares steady-state serving cost, not noise.
      warm_ms = run_suite_ms(service, jobs, /*expect_warm=*/true);
      for (int rep = 1; rep < 5; ++rep) {
        warm_ms = std::min(warm_ms, run_suite_ms(service, jobs,
                                                 /*expect_warm=*/true));
      }
      std::cout << service.stats().to_string() << "\n";
    }

    // Fresh process-equivalent: a second service over the same directory
    // must also serve the whole suite warm (persistence, not memory).
    {
      scl::serve::SynthesisService service(options);
      const double reopen_ms =
          run_suite_ms(service, jobs, /*expect_warm=*/true);
      std::cout << "reopened store: " << scl::format_fixed(reopen_ms, 1)
                << " ms, " << service.stats().store_hits << "/"
                << jobs.size() << " hits\n";
    }

    // Determinism: a cold run into an independent store must produce
    // byte-identical artifacts.
    scl::serve::ServiceOptions options_b = options;
    options_b.store_dir = (scratch / "store-b").string();
    {
      scl::serve::SynthesisService service(options_b);
      const double cold_b_ms =
          run_suite_ms(service, jobs, /*expect_warm=*/false);
      cold_ms = std::min(cold_ms, cold_b_ms);
    }
    const auto store_a = slurp_store(scratch / "store-a");
    const auto store_b = slurp_store(scratch / "store-b");
    if (store_a != store_b) {
      std::cerr << "FAIL: independent cold runs produced different "
                   "artifact bytes ("
                << store_a.size() << " vs " << store_b.size()
                << " files)\n";
      return 1;
    }

    const double ratio = warm_ms > 0.0 ? cold_ms / warm_ms : 1e9;
    std::cout << "cold: " << scl::format_fixed(cold_ms, 1)
              << " ms   warm: " << scl::format_fixed(warm_ms, 1)
              << " ms   speedup: " << scl::format_fixed(ratio, 1) << "x\n";
    std::cout << "artifacts byte-identical across independent cold runs ("
              << store_a.size() << " files)\n";
    if (!json_path.empty()) {
      std::ofstream(json_path)
          << scl::str_cat(
                 "{\"bench\":\"service\",\"threads\":",
                 scl::ThreadPool::resolve_threads(threads),
                 ",\"jobs\":", jobs.size(),
                 ",\"cold_ms\":", scl::format_fixed(cold_ms, 3),
                 ",\"warm_ms\":", scl::format_fixed(warm_ms, 3),
                 ",\"warm_speedup\":", scl::format_fixed(ratio, 3), "}")
          << "\n";
    }
    if (ratio < 10.0) {
      std::cerr << "FAIL: warm pass must be >= 10x faster than cold\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    fs::remove_all(scratch, ec);
    return 1;
  }
  fs::remove_all(scratch, ec);
  return 0;
}
