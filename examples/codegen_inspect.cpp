// Code-generation inspector.
//
//   $ codegen_inspect [benchmark-name]
//
// Generates the heterogeneous OpenCL kernels for a small instance of the
// chosen benchmark (2x2 kernels so the output stays readable), validates
// the source structurally, and prints it with a short summary. Useful for
// seeing exactly what the three generators (boundary, pipes, fused
// operation) emit.
#include <iostream>

#include "codegen/opencl_emitter.hpp"
#include "codegen/validator.hpp"
#include "stencil/kernels.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "FDTD-2D";
  try {
    const scl::stencil::BenchmarkInfo& info =
        scl::stencil::find_benchmark(name);
    std::array<std::int64_t, 3> extents{1, 1, 1};
    scl::sim::DesignConfig config;
    config.kind = scl::sim::DesignKind::kHeterogeneous;
    config.fused_iterations = 4;
    config.unroll = 4;
    for (int d = 0; d < info.dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      extents[ds] = 64;
      config.parallelism[ds] = d < 2 ? 2 : 1;
      config.tile_size[ds] = 32;
    }
    const scl::stencil::StencilProgram program =
        info.make_scaled(extents, 16);
    const scl::codegen::GeneratedCode code = scl::codegen::generate_opencl(
        program, config, scl::fpga::virtex7_690t());

    const auto issues =
        scl::codegen::validate_kernel_source(code.kernel_source);
    std::cout << code.kernel_source << "\n";
    std::cout << "// ---- summary: " << code.kernel_count << " kernels, "
              << code.pipe_count << " pipes, validation "
              << (issues.empty() ? "clean" : "FAILED") << " ----\n";
    for (const auto& issue : issues) {
      std::cout << "//   issue: " << issue.message << "\n";
    }
    return issues.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
