// Quickstart: synthesize an accelerator for a standard benchmark.
//
//   $ quickstart [benchmark-name]
//
// Runs the full framework flow on Jacobi-2D (or any Table 2 benchmark
// given on the command line) at the paper's input scale: feature
// extraction, baseline and heterogeneous design-space exploration,
// cycle-level simulation of both designs, and OpenCL code generation.
#include <fstream>
#include <iostream>

#include "core/framework.hpp"
#include "stencil/kernels.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Jacobi-2D";
  try {
    const scl::stencil::BenchmarkInfo& info =
        scl::stencil::find_benchmark(name);
    const scl::stencil::StencilProgram program = info.make_paper_scale();

    scl::core::FrameworkOptions options;  // defaults: Virtex-7 690T target
    const scl::core::Framework framework(program, options);
    const scl::core::SynthesisReport report = framework.synthesize();

    std::cout << report.to_string() << "\n";

    const std::string kernel_file = "stencil_kernels.cl";
    const std::string host_file = "stencil_host.cpp";
    std::ofstream(kernel_file) << report.code.kernel_source;
    std::ofstream(host_file) << report.code.host_source;
    std::cout << "wrote " << kernel_file << " (" << report.code.kernel_count
              << " kernels, " << report.code.pipe_count << " pipes) and "
              << host_file << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
