// stencil_compiler: the framework as a command-line tool.
//
//   stencil_compiler <input.stencil | input.cl | benchmark-name> [options]
//
//   --device <name>       target device (xc7vx690t | xc7vx485t | xcku115 |
//                         xcu280 | s10mx)
//   --family <name>       design-family policy: auto (default; search both
//                         and emit the predicted winner), pipe-tiling, or
//                         temporal-shift
//   --grid <n0[,n1[,n2]]> grid extents (required for .cl inputs)
//   --iterations <H>      iteration count (required for .cl inputs)
//   --init <field=spec>   initializer for a field (repeatable; .cl inputs)
//   --emit <dir>          write stencil_kernels.cl / stencil_host.cpp there
//   --report <file.md>    write a Markdown synthesis report
//   --no-sim              skip the device simulation
//   --analyze             print design-verifier diagnostics (pipe graph,
//                         halo & bounds, resource cross-check, generated
//                         sources); exit 1 when errors are reported
//   --analyze-json        like --analyze but machine-readable JSON: a
//                         versioned document ("schema_version") with the
//                         verifier diagnostics under "analysis"
//                         (docs/ARCHITECTURE.md §8 schema), the kernel-IR
//                         pass-4 coverage summary under "ir", and the DSE
//                         summary — candidates evaluated/pruned and the
//                         retained latency/BRAM Pareto front — under "dse"
//   --deep-ir             with the DSE verifier: generate each evaluated
//                         candidate's OpenCL and run the pass-4 kernel-IR
//                         checks on it, filtering candidates with errors
//                         (slow; implies per-candidate analysis)
//   --dump-stencil        print the program in .stencil form and exit
//   --list                list built-in benchmarks and devices, exit
//   --trace-out <file>    enable observability; write a Chrome trace_event
//                         JSON of the run (load in Perfetto / about:tracing)
//   --metrics-out <file>  enable observability; write a Prometheus-style
//                         text exposition of the process metrics
//
// Reads a stencil program from a `.stencil` file, imports a naive NDRange
// OpenCL kernel from a `.cl` file (the paper's input format), or takes a
// built-in benchmark by name; runs the full synthesis flow, prints the
// report, and optionally emits the generated OpenCL sources.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "frontend/ocl_import.hpp"

#include "core/framework.hpp"
#include "core/report.hpp"
#include "stencil/kernels.hpp"
#include "stencil/parser.hpp"
#include "support/json.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: stencil_compiler <input.stencil | benchmark-name> "
         "[--device <name>] [--family auto|pipe-tiling|temporal-shift] "
         "[--emit <dir>] [--no-sim] [--analyze] "
         "[--analyze-json] [--deep-ir] [--dump-stencil] [--list] "
         "[--trace-out <file>] [--metrics-out <file>]\n";
  return 2;
}

/// Matches "--name <value>" or "--name=<value>"; fills `*out` (empty on a
/// missing value, which the caller treats as a usage error).
bool flag_with_value(const std::string& arg, const std::string& name,
                     int argc, char** argv, int& i, std::string* out) {
  if (arg == name) {
    *out = i + 1 < argc ? argv[++i] : "";
    return true;
  }
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

void list_builtins() {
  std::cout << "built-in benchmarks:\n";
  for (const auto& info : scl::stencil::paper_benchmarks()) {
    std::cout << "  " << info.name << " (" << info.source << ", "
              << info.dims << "-D)\n";
  }
  std::cout << "devices:\n";
  for (const auto& dev : scl::fpga::device_catalog()) {
    std::cout << "  " << dev.name << " " << dev.capacity.to_string() << "\n";
  }
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw scl::Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

scl::stencil::StencilProgram load_program(
    const std::string& input,
    const scl::frontend::OpenClImportOptions& ocl_options) {
  if (ends_with(input, ".stencil")) {
    return scl::stencil::parse_program_file(input);
  }
  if (ends_with(input, ".cl")) {
    if (ocl_options.extents[0] <= 1 || ocl_options.iterations < 1) {
      throw scl::Error(
          ".cl inputs need --grid and --iterations (the host-side "
          "configuration the kernel file does not carry)");
    }
    return scl::frontend::import_opencl(read_file(input), ocl_options);
  }
  return scl::stencil::find_benchmark(input).make_paper_scale();
}

struct ToolConfig {
  std::string input;
  std::string device_name = "xc7vx690t";
  scl::core::FamilySelection family = scl::core::FamilySelection::kAuto;
  std::optional<std::string> emit_dir;
  std::optional<std::string> report_path;
  bool simulate = true;
  bool dump = false;
  bool analyze = false;
  bool analyze_json = false;
  bool deep_ir = false;
  scl::frontend::OpenClImportOptions ocl_options;
};

/// The whole compile flow; split out of main() so observability files can
/// be written after *every* exit path (--dump-stencil, the analyze modes
/// and errors all return early).
int run_tool(const ToolConfig& cfg) {
  const auto run_span =
      scl::support::obs::tracer().span("compiler/run", "cli");
  const scl::stencil::StencilProgram program = [&] {
    const auto span =
        scl::support::obs::tracer().span("compiler/parse", "frontend");
    return load_program(cfg.input, cfg.ocl_options);
  }();
  if (cfg.dump) {
    std::cout << scl::stencil::program_to_text(program);
    return 0;
  }

  scl::core::FrameworkOptions options;
  options.optimizer.device = scl::fpga::find_device(cfg.device_name);
  options.family = cfg.family;
  options.simulate = cfg.simulate && !cfg.analyze && !cfg.analyze_json;
  options.generate_code = true;
  if (cfg.deep_ir) {
    options.optimizer.analyze_candidates = true;
    options.optimizer.deep_ir_analysis = true;
  }
  // The analyze modes render diagnostics themselves instead of letting
  // the framework abort on the first error.
  options.fail_on_analysis_error = !cfg.analyze && !cfg.analyze_json;
  const scl::core::Framework framework(program, options);
  const scl::core::SynthesisReport report = framework.synthesize();

  if (cfg.analyze_json) {
    scl::support::JsonWriter json;
    json.begin_object();
    // Bumped whenever the document layout changes; see
    // docs/ARCHITECTURE.md §8 for the history. v2 added
    // "schema_version" itself and the "ir" section; v3 added the
    // "family" section and the per-frontier-point "family" member; v4
    // added the "device" section (banked memory model) and the
    // per-frontier-point "replication" member.
    json.member("schema_version", 4);
    json.key("device").begin_object();
    json.member("name", options.optimizer.device.name);
    json.key("memory").begin_object();
    json.member("banks", options.optimizer.device.memory.banks);
    json.member("bank_bytes_per_cycle",
                options.optimizer.device.effective_bank_bytes_per_cycle());
    json.member("bank_conflict_factor",
                options.optimizer.device.memory.bank_conflict_factor);
    json.member("mem_bytes_per_cycle",
                options.optimizer.device.mem_bytes_per_cycle);
    json.end_object();
    json.end_object();
    json.key("family").begin_object();
    json.member("requested", scl::core::to_string(options.family));
    json.member("selected", scl::arch::to_string(report.selected_family));
    json.member("temporal_searched", report.temporal.has_value());
    json.end_object();
    json.key("analysis").raw(report.analysis.render_json());
    json.key("ir").begin_object();
    json.member("ran", report.ir.ran);
    json.member("kernels_lowered", report.ir.kernels_lowered);
    json.member("pipes_checked", report.ir.pipes_checked);
    json.member("unmodeled_constructs", report.ir.unmodeled_constructs);
    json.member("errors", report.ir.errors);
    json.member("warnings", report.ir.warnings);
    json.end_object();
    json.key("dse").begin_object();
    json.member("candidates_evaluated", report.dse.candidates_evaluated);
    json.member("candidates_pruned", report.dse.candidates_pruned);
    json.member("cache_hits", report.dse.cache_hits);
    json.member("cache_misses", report.dse.cache_misses);
    json.key("frontier").begin_array();
    for (const scl::core::DesignPoint& point : report.frontier) {
      json.begin_object();
      json.member("family", scl::arch::to_string(point.config.family));
      json.member("config", point.config.summary(program.dims()));
      json.member("replication", point.config.replication);
      json.member("predicted_cycles", point.prediction.total_cycles);
      json.member("bram18", point.resources.total.bram18);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    json.end_object();
    std::cout << json.take() << "\n";
    return report.analysis.has_errors() ? 1 : 0;
  }
  if (cfg.analyze) {
    if (report.analysis.empty()) {
      std::cout << "design verification: no diagnostics\n";
    } else {
      std::cout << report.analysis.render_text();
    }
    return report.analysis.has_errors() ? 1 : 0;
  }
  std::cout << report.to_string();

  if (cfg.report_path.has_value()) {
    std::ofstream(*cfg.report_path)
        << scl::core::render_markdown_report(report);
    std::cout << "wrote report " << *cfg.report_path << "\n";
  }

  if (cfg.emit_dir.has_value()) {
    std::filesystem::create_directories(*cfg.emit_dir);
    const auto kernel_path =
        std::filesystem::path(*cfg.emit_dir) / "stencil_kernels.cl";
    const auto host_path =
        std::filesystem::path(*cfg.emit_dir) / "stencil_host.cpp";
    const auto script_path =
        std::filesystem::path(*cfg.emit_dir) / "build.sh";
    std::ofstream(kernel_path) << report.code.kernel_source;
    std::ofstream(host_path) << report.code.host_source;
    std::ofstream(script_path) << report.code.build_script;
    std::filesystem::permissions(script_path,
                                 std::filesystem::perms::owner_exec,
                                 std::filesystem::perm_options::add);
    std::cout << "emitted " << kernel_path.string() << ", "
              << host_path.string() << " and " << script_path.string()
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ToolConfig cfg;
  std::string trace_out;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--list") {
      list_builtins();
      return 0;
    }
    if (arg == "--no-sim") {
      cfg.simulate = false;
    } else if (arg == "--analyze") {
      cfg.analyze = true;
    } else if (arg == "--analyze-json") {
      cfg.analyze_json = true;
    } else if (arg == "--deep-ir") {
      cfg.deep_ir = true;
    } else if (arg == "--dump-stencil") {
      cfg.dump = true;
    } else if (flag_with_value(arg, "--trace-out", argc, argv, i, &value)) {
      if (value.empty()) return usage();
      trace_out = value;
    } else if (flag_with_value(arg, "--metrics-out", argc, argv, i,
                               &value)) {
      if (value.empty()) return usage();
      metrics_out = value;
    } else if (arg == "--device") {
      if (++i >= argc) return usage();
      cfg.device_name = argv[i];
    } else if (flag_with_value(arg, "--family", argc, argv, i, &value)) {
      if (value == "auto") {
        cfg.family = scl::core::FamilySelection::kAuto;
      } else if (value == "pipe-tiling") {
        cfg.family = scl::core::FamilySelection::kPipeTiling;
      } else if (value == "temporal-shift") {
        cfg.family = scl::core::FamilySelection::kTemporalShift;
      } else {
        std::cerr << "unknown family '" << value << "'\n";
        return usage();
      }
    } else if (arg == "--emit") {
      if (++i >= argc) return usage();
      cfg.emit_dir = argv[i];
    } else if (arg == "--report") {
      if (++i >= argc) return usage();
      cfg.report_path = argv[i];
    } else if (arg == "--grid") {
      if (++i >= argc) return usage();
      const auto parts = scl::split(argv[i], ',');
      if (parts.empty() || parts.size() > 3) return usage();
      cfg.ocl_options.dims = static_cast<int>(parts.size());
      for (std::size_t d = 0; d < parts.size(); ++d) {
        cfg.ocl_options.extents[d] = std::stoll(parts[d]);
      }
    } else if (arg == "--iterations") {
      if (++i >= argc) return usage();
      cfg.ocl_options.iterations = std::stoll(argv[i]);
    } else if (arg == "--init") {
      if (++i >= argc) return usage();
      const std::string spec = argv[i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) return usage();
      cfg.ocl_options.init_specs[spec.substr(0, eq)] = spec.substr(eq + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    } else if (cfg.input.empty()) {
      cfg.input = arg;
    } else {
      return usage();
    }
  }
  if (cfg.input.empty()) return usage();

  const bool observe = !trace_out.empty() || !metrics_out.empty();
  if (observe) scl::support::obs::set_enabled(true);

  int rc = 0;
  try {
    rc = run_tool(cfg);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 1;
  }
  if (!trace_out.empty()) {
    std::ofstream(trace_out)
        << scl::support::obs::tracer().render_chrome_json() << "\n";
    std::cerr << "wrote trace " << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream(metrics_out)
        << scl::support::obs::metrics().render_exposition();
    std::cerr << "wrote metrics " << metrics_out << "\n";
  }
  return rc;
}
