// Domain example: electromagnetic wave propagation (FDTD) with a
// fusion-depth study.
//
// Sweeps the iteration-fusion depth of the heterogeneous design for a
// mid-size FDTD-2D instance and prints the analytical prediction next to
// the simulated ("measured") latency — a single-application slice of the
// paper's Figure 7 — then reports where the model places the optimum.
#include <iostream>

#include "model/perf_model.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "support/math.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  const auto program = scl::stencil::make_fdtd2d(1024, 1024, 256);
  const scl::fpga::DeviceSpec device = scl::fpga::virtex7_690t();
  const scl::model::PerfModel model(program, device);
  const scl::sim::Executor executor(device);

  scl::sim::DesignConfig config;
  config.kind = scl::sim::DesignKind::kHeterogeneous;
  config.parallelism = {4, 4, 1};
  config.tile_size = {64, 64, 1};
  config.unroll = 8;

  scl::TableWriter table(
      {"fused h", "predicted (Mcyc)", "measured (Mcyc)", "error", "ms"});
  double best_pred = 0.0, best_meas = 0.0;
  std::int64_t argmin_pred = 0, argmin_meas = 0;
  for (const std::int64_t h : {2, 4, 8, 16, 32, 64}) {
    config.fused_iterations = h;
    const double predicted = model.predict_cycles(config);
    const scl::sim::SimResult sim =
        executor.run(program, config, scl::sim::SimMode::kTimingOnly);
    const double measured = static_cast<double>(sim.total_cycles);
    table.add_row({std::to_string(h),
                   scl::format_fixed(predicted / 1e6, 2),
                   scl::format_fixed(measured / 1e6, 2),
                   scl::format_fixed(
                       100.0 * scl::relative_error(predicted, measured), 1) +
                       "%",
                   scl::format_fixed(sim.total_ms, 1)});
    if (argmin_pred == 0 || predicted < best_pred) {
      best_pred = predicted;
      argmin_pred = h;
    }
    if (argmin_meas == 0 || measured < best_meas) {
      best_meas = measured;
      argmin_meas = h;
    }
  }
  std::cout << "FDTD-2D 1024x1024, 256 iterations — heterogeneous design, "
               "4x4 kernels:\n\n"
            << table.to_text() << "\n"
            << "model optimum h=" << argmin_pred << ", simulated optimum h="
            << argmin_meas
            << (argmin_pred == argmin_meas ? " (agree)" : " (differ)") << "\n";
  return 0;
}
