// PolyBench jacobi-1d as a naive NDRange kernel.
__kernel void jacobi1d(__global const float* restrict A,
                       __global float* restrict Anext, const int N) {
  int i = get_global_id(0);
  if (i >= 1 && i < N - 1) {
    Anext[i] = 0.33333f * (A[i - 1] + A[i] + A[i + 1]);
  }
}
