// PolyBench fdtd-2d: three kernels enqueued back to back per time step,
// each updating its field in place.
__kernel void fdtd2d_ey(__global float* restrict ey,
                        __global const float* restrict hz, const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i >= 1) {
    ey[i * N + j] = ey[i * N + j] - 0.5f * (hz[i * N + j] - hz[(i - 1) * N + j]);
  }
}
__kernel void fdtd2d_ex(__global float* restrict ex,
                        __global const float* restrict hz, const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (j >= 1) {
    ex[i * N + j] = ex[i * N + j] - 0.5f * (hz[i * N + j] - hz[i * N + (j - 1)]);
  }
}
__kernel void fdtd2d_hz(__global float* restrict hz,
                        __global const float* restrict ex,
                        __global const float* restrict ey, const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i < N - 1 && j < N - 1) {
    hz[i * N + j] = hz[i * N + j] - 0.7f * (ex[i * N + (j + 1)] - ex[i * N + j]
        + ey[(i + 1) * N + j] - ey[i * N + j]);
  }
}
