// Rodinia hotspot RC thermal update (constant power map).
__kernel void hotspot2d(__global const float* restrict temp,
                        __global float* restrict temp_out,
                        __global const float* restrict power, const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i >= 1 && i < N - 1 && j >= 1 && j < N - 1) {
    temp_out[i * N + j] = temp[i * N + j] + 0.5f * (power[i * N + j]
        + (temp[(i - 1) * N + j] + temp[(i + 1) * N + j]
           - 2.0f * temp[i * N + j]) * 0.1f
        + (temp[i * N + (j - 1)] + temp[i * N + (j + 1)]
           - 2.0f * temp[i * N + j]) * 0.1f
        + (80.0f - temp[i * N + j]) * 0.05f);
  }
}
