// Parboil-style 7-point 3-D stencil.
__kernel void jacobi3d(__global const float* restrict A,
                       __global float* restrict Anext,
                       const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  if (i >= 1 && i < NX - 1 && j >= 1 && j < NY - 1 && k >= 1 && k < NZ - 1) {
    Anext[(i * NY + j) * NZ + k] = 0.4f * A[(i * NY + j) * NZ + k]
        + 0.1f * (A[((i - 1) * NY + j) * NZ + k] + A[((i + 1) * NY + j) * NZ + k]
        + A[(i * NY + (j - 1)) * NZ + k] + A[(i * NY + (j + 1)) * NZ + k]
        + A[(i * NY + j) * NZ + (k - 1)] + A[(i * NY + j) * NZ + (k + 1)]);
  }
}
