// PolyBench jacobi-2d as a naive NDRange kernel (paper Figure 3).
__kernel void jacobi2d(__global const float* restrict A,
                       __global float* restrict Anext, const int N) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i >= 1 && i < N - 1 && j >= 1 && j < N - 1) {
    Anext[i * N + j] = 0.2f * (A[i * N + j] + A[i * N + (j - 1)]
        + A[i * N + (j + 1)] + A[(i - 1) * N + j] + A[(i + 1) * N + j]);
  }
}
