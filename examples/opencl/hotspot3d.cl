// Rodinia hotspot3D thermal update.
__kernel void hotspot3d(__global const float* restrict temp,
                        __global float* restrict temp_out,
                        __global const float* restrict power,
                        const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  if (i >= 1 && i < NX - 1 && j >= 1 && j < NY - 1 && k >= 1 && k < NZ - 1) {
    temp_out[(i * NY + j) * NZ + k] = temp[(i * NY + j) * NZ + k]
        + 0.5f * (power[(i * NY + j) * NZ + k]
        + (temp[((i - 1) * NY + j) * NZ + k] + temp[((i + 1) * NY + j) * NZ + k]
           - 2.0f * temp[(i * NY + j) * NZ + k]) * 0.06f
        + (temp[(i * NY + (j - 1)) * NZ + k] + temp[(i * NY + (j + 1)) * NZ + k]
           - 2.0f * temp[(i * NY + j) * NZ + k]) * 0.06f
        + (temp[(i * NY + j) * NZ + (k - 1)] + temp[(i * NY + j) * NZ + (k + 1)]
           - 2.0f * temp[(i * NY + j) * NZ + k]) * 0.06f
        + (80.0f - temp[(i * NY + j) * NZ + k]) * 0.04f);
  }
}
