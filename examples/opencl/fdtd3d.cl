// 3-D Yee FDTD: E updates read backward differences of H, H updates read
// forward differences of E; six in-place kernels per time step.
__kernel void fdtd3d_ex(__global float* restrict ex,
                        __global const float* restrict hz,
                        __global const float* restrict hy,
                        const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  ex[(i * NY + j) * NZ + k] = ex[(i * NY + j) * NZ + k]
      - 0.5f * ((hz[(i * NY + (j - 1)) * NZ + k] - hz[(i * NY + j) * NZ + k])
      - (hy[(i * NY + j) * NZ + (k - 1)] - hy[(i * NY + j) * NZ + k]));
}
__kernel void fdtd3d_ey(__global float* restrict ey,
                        __global const float* restrict hx,
                        __global const float* restrict hz,
                        const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  ey[(i * NY + j) * NZ + k] = ey[(i * NY + j) * NZ + k]
      - 0.5f * ((hx[(i * NY + j) * NZ + (k - 1)] - hx[(i * NY + j) * NZ + k])
      - (hz[((i - 1) * NY + j) * NZ + k] - hz[(i * NY + j) * NZ + k]));
}
__kernel void fdtd3d_ez(__global float* restrict ez,
                        __global const float* restrict hy,
                        __global const float* restrict hx,
                        const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  ez[(i * NY + j) * NZ + k] = ez[(i * NY + j) * NZ + k]
      - 0.5f * ((hy[((i - 1) * NY + j) * NZ + k] - hy[(i * NY + j) * NZ + k])
      - (hx[(i * NY + (j - 1)) * NZ + k] - hx[(i * NY + j) * NZ + k]));
}
__kernel void fdtd3d_hx(__global float* restrict hx,
                        __global const float* restrict ez,
                        __global const float* restrict ey,
                        const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  hx[(i * NY + j) * NZ + k] = hx[(i * NY + j) * NZ + k]
      - 0.7f * ((ez[(i * NY + (j + 1)) * NZ + k] - ez[(i * NY + j) * NZ + k])
      - (ey[(i * NY + j) * NZ + (k + 1)] - ey[(i * NY + j) * NZ + k]));
}
__kernel void fdtd3d_hy(__global float* restrict hy,
                        __global const float* restrict ex,
                        __global const float* restrict ez,
                        const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  hy[(i * NY + j) * NZ + k] = hy[(i * NY + j) * NZ + k]
      - 0.7f * ((ex[(i * NY + j) * NZ + (k + 1)] - ex[(i * NY + j) * NZ + k])
      - (ez[((i + 1) * NY + j) * NZ + k] - ez[(i * NY + j) * NZ + k]));
}
__kernel void fdtd3d_hz(__global float* restrict hz,
                        __global const float* restrict ey,
                        __global const float* restrict ex,
                        const int NX, const int NY, const int NZ) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  int k = get_global_id(2);
  hz[(i * NY + j) * NZ + k] = hz[(i * NY + j) * NZ + k]
      - 0.7f * ((ey[((i + 1) * NY + j) * NZ + k] - ey[(i * NY + j) * NZ + k])
      - (ex[(i * NY + (j + 1)) * NZ + k] - ex[(i * NY + j) * NZ + k]));
}
