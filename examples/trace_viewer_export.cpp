// Export a kernel-pipeline trace of one region execution.
//
//   $ trace_viewer_export [benchmark-name] [output.json]
//
// Simulates one representative region of the DSE-chosen heterogeneous
// design and writes the per-kernel event timeline in Chrome-tracing JSON
// (open in chrome://tracing or https://ui.perfetto.dev). The timeline
// shows the paper's §3/§4 mechanics directly: staggered kernel launches,
// burst reads, the shrinking per-iteration compute blocks, halo waits on
// the pipes, and the end-of-region barrier skew.
#include <fstream>
#include <iostream>

#include "core/optimizer.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Jacobi-2D";
  const std::string out_path = argc > 2 ? argv[2] : "region_trace.json";
  try {
    const auto program = scl::stencil::find_benchmark(name).make_paper_scale();
    const scl::core::Optimizer optimizer(program,
                                         scl::core::OptimizerOptions{});
    const scl::core::DesignPoint design =
        optimizer.optimize_heterogeneous(optimizer.optimize_baseline());

    const scl::sim::Executor executor(scl::fpga::virtex7_690t());
    const scl::sim::RegionTrace trace =
        executor.trace_region(program, design.config);

    std::ofstream(out_path) << trace.to_chrome_json();
    std::cout << name << " (" << design.config.summary(program.dims())
              << "): traced one region pass, "
              << trace.events.size() << " events over "
              << scl::format_thousands(trace.region_cycles)
              << " cycles -> " << out_path << "\n";

    // Quick textual digest: busiest phases per kernel.
    std::int64_t launch = 0, compute = 0, waits = 0, memory = 0;
    for (const auto& e : trace.events) {
      const std::int64_t d = e.end - e.begin;
      if (e.phase == "launch") launch += d;
      else if (scl::starts_with(e.phase, "compute")) compute += d;
      else if (e.phase == "halo_wait" || e.phase == "pipe_send") waits += d;
      else memory += d;
    }
    const double total = static_cast<double>(launch + compute + waits + memory);
    std::cout << "  compute " << scl::format_fixed(100.0 * compute / total, 1)
              << "%, memory " << scl::format_fixed(100.0 * memory / total, 1)
              << "%, pipes " << scl::format_fixed(100.0 * waits / total, 1)
              << "%, launch " << scl::format_fixed(100.0 * launch / total, 1)
              << "%\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
