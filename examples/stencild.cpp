// stencild: synthesis driver over the serving subsystem. Two modes:
//
// Batch (default):
//   stencild [--suite | --jobs <manifest.jsonl>] [options]
//
//   --suite               enqueue the 7 paper benchmarks (default when no
//                         --jobs is given)
//   --jobs <file.jsonl>   JSONL job manifest, one job object per line:
//                           {"benchmark": "Jacobi-2D"}
//                           {"stencil": "examples/highorder.stencil"}
//                           {"benchmark": "Jacobi-1D",
//                            "grid": [4096], "iterations": 512,
//                            "priority": 2, "timeout_ms": 60000}
//   --emit <dir>          write each job's generated sources under
//                         <dir>/<name>/
//   --require-warm        exit 1 unless every job was served from the
//                         artifact store (CI uses this to assert a warm
//                         second pass)
//   --quiet               suppress per-job lines
//
// Daemon (--listen):
//   stencild --listen <socket> [options]
//
//   Serves newline-delimited JSON requests (serve/wire.hpp) over a
//   Unix-domain socket until SIGTERM/SIGINT, then drains: in-flight and
//   queued *accepted* requests still get their responses before exit.
//   Exit status 0 iff the drain completed inside --drain-timeout.
//
//   --drain-timeout <ms>      bound on the graceful drain (default 10000)
//   --max-connections <n>     concurrent client connections (default 64)
//   --max-queue <n>           admitted-but-unanswered bound before
//                             load-shedding (default 256)
//   --tenant-max-inflight <n> per-tenant concurrency quota (default 64)
//   --tenant-rate <r>         per-tenant admits/second; 0 disables
//   --tenant-burst <n>        token-bucket burst size (default 8)
//
// Shared options:
//   --store <dir>         artifact-store root (default .stencild-store)
//   --shards <d1,d2,...>  shard the store across several roots (one
//                         consistent-hash namespace); overrides --store
//   --no-store            disable persistence (coalescing still applies)
//   --capacity-mb <n>     per-shard size bound before LRU eviction
//   --mem-cache-mb <n>    hot in-memory artifact tier bound (default 64;
//                         0 disables)
//   --threads <n>         concurrent synthesis workers (default:
//                         SCL_THREADS, then hardware concurrency)
//   --device <name>       target device for every job
//   --stats-json <file>   write service counters as JSON; in daemon mode
//                         written on *every* exit path (drain, fatal
//                         socket error, exception)
//   --metrics-out <file>  enable observability; write the Prometheus-
//                         style exposition (same every-exit-path
//                         guarantee in daemon mode)
//
// Every job is content-addressed: identical (program, device, options)
// requests are served from the tiered artifact store (memory, then the
// key's disk shard), and identical concurrent requests coalesce onto one
// synthesis.
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "fpga/device.hpp"
#include "serve/daemon.hpp"
#include "serve/service.hpp"
#include "stencil/kernels.hpp"
#include "stencil/parser.hpp"
#include "support/json.hpp"
#include "support/observability/observability.hpp"
#include "support/shutdown.hpp"
#include "support/strings.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: stencild [--suite | --jobs <manifest.jsonl> | "
         "--listen <socket>]\n"
         "  [--store <dir>] [--shards <d1,d2,...>] [--no-store] "
         "[--capacity-mb <n>]\n"
         "  [--mem-cache-mb <n>] [--threads <n>] [--device <name>] "
         "[--emit <dir>]\n"
         "  [--stats-json <file>] [--metrics-out <file>] [--require-warm] "
         "[--quiet]\n"
         "  [--drain-timeout <ms>] [--max-connections <n>] "
         "[--max-queue <n>]\n"
         "  [--tenant-max-inflight <n>] [--tenant-rate <r>] "
         "[--tenant-burst <n>]\n";
  return 2;
}

std::vector<scl::serve::JobRequest> suite_jobs() {
  std::vector<scl::serve::JobRequest> jobs;
  for (const auto& info : scl::stencil::paper_benchmarks()) {
    scl::serve::JobRequest job;
    job.name = info.name;
    job.program = std::make_shared<scl::stencil::StencilProgram>(
        info.make_paper_scale());
    jobs.push_back(std::move(job));
  }
  return jobs;
}

scl::serve::JobRequest manifest_job(const scl::support::JsonValue& entry,
                                    int line_number) {
  using scl::Error;
  if (!entry.is_object()) {
    throw Error(scl::str_cat("manifest line ", line_number,
                             ": job must be a JSON object"));
  }
  scl::serve::JobRequest job;
  const std::string benchmark = entry.get_string("benchmark", "");
  const std::string stencil_path = entry.get_string("stencil", "");
  if (benchmark.empty() == stencil_path.empty()) {
    throw Error(scl::str_cat("manifest line ", line_number,
                             ": need exactly one of \"benchmark\" or "
                             "\"stencil\""));
  }
  if (!benchmark.empty()) {
    const auto& info = scl::stencil::find_benchmark(benchmark);
    std::array<std::int64_t, 3> extents = info.input_size;
    std::int64_t iterations =
        entry.get_int64("iterations", info.iterations);
    if (const auto* grid = entry.find("grid")) {
      if (grid->size() == 0 || grid->size() > 3) {
        throw Error(scl::str_cat("manifest line ", line_number,
                                 ": \"grid\" needs 1..3 extents"));
      }
      extents = {1, 1, 1};
      for (std::size_t d = 0; d < grid->size(); ++d) {
        extents[d] = (*grid)[d].as_int64();
      }
    }
    job.name = benchmark;
    job.program = std::make_shared<scl::stencil::StencilProgram>(
        info.make_scaled(extents, iterations));
  } else {
    job.name = std::filesystem::path(stencil_path).stem().string();
    job.program = std::make_shared<scl::stencil::StencilProgram>(
        scl::stencil::parse_program_file(stencil_path));
  }
  job.priority = static_cast<int>(entry.get_int64("priority", 0));
  job.timeout =
      std::chrono::milliseconds(entry.get_int64("timeout_ms", 0));
  return job;
}

std::vector<scl::serve::JobRequest> manifest_jobs(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw scl::Error("cannot open manifest '" + path + "'");
  std::vector<scl::serve::JobRequest> jobs;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = scl::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    jobs.push_back(
        manifest_job(scl::support::JsonValue::parse(trimmed), line_number));
  }
  if (jobs.empty()) {
    throw scl::Error("manifest '" + path + "' contains no jobs");
  }
  return jobs;
}

void emit_sources(const std::string& dir,
                  const scl::serve::JobResult& result) {
  const std::filesystem::path out_dir =
      std::filesystem::path(dir) / result.name;
  std::filesystem::create_directories(out_dir);
  std::ofstream(out_dir / "stencil_kernels.cl")
      << result.artifact->code.kernel_source;
  std::ofstream(out_dir / "stencil_host.cpp")
      << result.artifact->code.host_source;
  std::ofstream(out_dir / "build.sh") << result.artifact->code.build_script;
  std::ofstream(out_dir / "report.md") << result.artifact->markdown_report;
}

/// Flushes --stats-json / --metrics-out in its destructor, so daemon mode
/// writes them on every exit path: clean SIGTERM drain, fatal socket
/// errors, and exceptions unwinding out of run().
class StatsFlusher {
 public:
  StatsFlusher(std::string stats_path, std::string metrics_path)
      : stats_path_(std::move(stats_path)),
        metrics_path_(std::move(metrics_path)) {}

  StatsFlusher(const StatsFlusher&) = delete;
  StatsFlusher& operator=(const StatsFlusher&) = delete;

  void attach(const scl::serve::Daemon* daemon) { daemon_ = daemon; }

  ~StatsFlusher() { flush(); }

  void flush() noexcept {
    try {
      if (daemon_ == nullptr) return;
      if (!stats_path_.empty()) {
        std::ofstream(stats_path_) << daemon_->render_stats_json() << "\n";
      }
      if (!metrics_path_.empty()) {
        std::ofstream out(metrics_path_);
        out << daemon_->render_metrics_exposition();
        out << scl::support::obs::metrics().render_exposition();
      }
      daemon_ = nullptr;  // one flush; run() may also call this early
    } catch (...) {
      // Flushing is best-effort by design: never turn a clean drain into
      // a crash because the stats file was unwritable.
    }
  }

 private:
  std::string stats_path_;
  std::string metrics_path_;
  const scl::serve::Daemon* daemon_ = nullptr;
};

struct DaemonCliOptions {
  std::string socket_path;
  std::int64_t drain_timeout_ms = 10000;
  int max_connections = 64;
  std::int64_t max_queue = 256;
  int tenant_max_inflight = 64;
  double tenant_rate = 0.0;
  double tenant_burst = 8.0;
};

int run_daemon(const DaemonCliOptions& cli,
               scl::serve::ServiceOptions service_options,
               const std::string& stats_json_path,
               const std::string& metrics_out) {
  scl::serve::DaemonOptions options;
  options.socket_path = cli.socket_path;
  options.drain_timeout = std::chrono::milliseconds(cli.drain_timeout_ms);
  options.max_connections = cli.max_connections;
  options.admission.max_queue_depth = cli.max_queue;
  options.admission.default_quota.max_in_flight = cli.tenant_max_inflight;
  options.admission.default_quota.rate_per_sec = cli.tenant_rate;
  options.admission.default_quota.burst = cli.tenant_burst;
  options.service = std::move(service_options);

  scl::support::ShutdownLatch::install({SIGTERM, SIGINT});
  scl::support::ShutdownLatch& latch =
      scl::support::ShutdownLatch::instance();

  StatsFlusher flusher(stats_json_path, metrics_out);
  scl::serve::Daemon daemon(std::move(options));
  flusher.attach(&daemon);
  const int exit_code = daemon.run(latch);
  flusher.flush();  // flush explicitly so the summary below sees files
  const scl::serve::DaemonStats stats = daemon.stats();
  std::cerr << "stencild: " << stats.responses << " response(s), "
            << stats.admitted << " admitted, " << stats.shed << " shed, "
            << stats.quota_rejected << " quota-rejected, "
            << (stats.drained_clean ? "clean drain" : "FORCED drain")
            << "\n";
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  bool suite = false;
  bool no_store = false;
  bool require_warm = false;
  bool quiet = false;
  std::string store_dir = ".stencild-store";
  std::string shards_arg;
  std::string device_name;
  std::string emit_dir;
  std::string stats_json_path;
  std::string metrics_out;
  std::int64_t capacity_mb = 256;
  std::int64_t mem_cache_mb = 64;
  int threads = 0;
  DaemonCliOptions daemon_cli;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) {
        std::exit(usage());
      }
      return argv[i];
    };
    if (arg == "--suite") {
      suite = true;
    } else if (arg == "--jobs") {
      manifest_path = next();
    } else if (arg == "--listen") {
      daemon_cli.socket_path = next();
    } else if (arg == "--drain-timeout") {
      daemon_cli.drain_timeout_ms = std::stoll(next());
    } else if (arg == "--max-connections") {
      daemon_cli.max_connections = std::stoi(next());
    } else if (arg == "--max-queue") {
      daemon_cli.max_queue = std::stoll(next());
    } else if (arg == "--tenant-max-inflight") {
      daemon_cli.tenant_max_inflight = std::stoi(next());
    } else if (arg == "--tenant-rate") {
      daemon_cli.tenant_rate = std::stod(next());
    } else if (arg == "--tenant-burst") {
      daemon_cli.tenant_burst = std::stod(next());
    } else if (arg == "--store") {
      store_dir = next();
    } else if (arg == "--shards") {
      shards_arg = next();
    } else if (arg == "--no-store") {
      no_store = true;
    } else if (arg == "--capacity-mb") {
      capacity_mb = std::stoll(next());
    } else if (arg == "--mem-cache-mb") {
      mem_cache_mb = std::stoll(next());
    } else if (arg == "--threads") {
      threads = std::stoi(next());
    } else if (arg == "--device") {
      device_name = next();
    } else if (arg == "--emit") {
      emit_dir = next();
    } else if (arg == "--stats-json") {
      stats_json_path = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
      if (metrics_out.empty()) return usage();
    } else if (arg == "--require-warm") {
      require_warm = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    }
  }
  const bool daemon_mode = !daemon_cli.socket_path.empty();
  if (suite && !manifest_path.empty()) return usage();
  if (daemon_mode && (suite || !manifest_path.empty() || require_warm ||
                      !emit_dir.empty())) {
    return usage();
  }
  if (!metrics_out.empty()) scl::support::obs::set_enabled(true);

  try {
    scl::serve::ServiceOptions options;
    options.store_dir = no_store ? "" : store_dir;
    if (!no_store && !shards_arg.empty()) {
      options.store_shards = scl::split(shards_arg, ',');
    }
    options.store_capacity_bytes = capacity_mb * 1024 * 1024;
    options.memory_cache_bytes = mem_cache_mb * 1024 * 1024;
    options.threads = threads;
    if (!device_name.empty()) {
      options.framework.optimizer.device =
          scl::fpga::find_device(device_name);
    }

    if (daemon_mode) {
      return run_daemon(daemon_cli, std::move(options), stats_json_path,
                        metrics_out);
    }

    const std::vector<scl::serve::JobRequest> jobs =
        manifest_path.empty() ? suite_jobs() : manifest_jobs(manifest_path);

    scl::serve::SynthesisService service(options);
    const std::vector<scl::serve::JobResult> results =
        service.run_batch(jobs);

    int failures = 0;
    int cold = 0;
    for (const scl::serve::JobResult& result : results) {
      const char* status = !result.ok          ? "FAIL"
                           : result.from_cache ? "warm"
                           : result.coalesced  ? "coal"
                                               : "cold";
      if (!result.ok) ++failures;
      if (result.ok && !result.from_cache) ++cold;
      if (!quiet) {
        std::ostringstream line;
        line << "[" << status << "] " << result.name;
        if (!result.key.empty()) {
          line << "  key=" << result.key.substr(0, 12);
        }
        if (result.ok) {
          line << "  speedup " << scl::format_speedup(
                      result.artifact->speedup)
               << "  " << scl::format_fixed(result.latency_ms, 1) << " ms";
        } else {
          line << "  error: " << result.error;
        }
        std::cout << line.str() << "\n";
      }
      if (result.ok && !emit_dir.empty()) emit_sources(emit_dir, result);
    }

    if (!quiet) std::cout << "\n" << service.stats().to_string();
    if (!stats_json_path.empty()) {
      std::ofstream(stats_json_path) << service.render_stats_json() << "\n";
    }
    if (!metrics_out.empty()) {
      // Service-local registry first, then the process-global pipeline
      // metrics (populated because observability was switched on above).
      std::ofstream out(metrics_out);
      out << service.render_metrics_exposition();
      out << scl::support::obs::metrics().render_exposition();
      std::cerr << "wrote metrics " << metrics_out << "\n";
    }

    if (failures > 0) return 1;
    if (require_warm && cold > 0) {
      std::cerr << "error: --require-warm, but " << cold
                << " job(s) missed the artifact store\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
