// Domain example: thermal simulation of a chip floorplan with a hotspot.
//
// Shows the public API for *user-defined* stencils rather than the bundled
// benchmarks: the thermal RC update is declared as a formula over two
// fields (temperature plus a constant power map derived from a synthetic
// floorplan), the functional simulator runs the synthesized heterogeneous
// design, and the result is proven bit-exact against the golden reference
// before the steady-state temperature profile is summarized.
#include <iostream>

#include "sim/executor.hpp"
#include "stencil/formula.hpp"
#include "stencil/reference.hpp"
#include "support/strings.hpp"

using scl::stencil::Box;
using scl::stencil::Index;

namespace {

constexpr std::int64_t kDie = 96;       // 96x96 thermal cells
constexpr std::int64_t kSteps = 40;     // time steps to simulate

/// Synthetic floorplan: two hot blocks (cores) and a cool cache region.
float power_at(const Index& p) {
  const auto in_block = [&](std::int64_t lo0, std::int64_t hi0,
                            std::int64_t lo1, std::int64_t hi1) {
    return p[0] >= lo0 && p[0] < hi0 && p[1] >= lo1 && p[1] < hi1;
  };
  if (in_block(12, 40, 12, 44)) return 1.8f;  // core 0
  if (in_block(56, 84, 50, 86)) return 2.2f;  // core 1 (hotter)
  if (in_block(12, 44, 56, 86)) return 0.3f;  // last-level cache
  return 0.1f;                                // uncore / interconnect
}

scl::stencil::StencilProgram make_floorplan_program() {
  const std::vector<std::string> fields{"temp", "power"};
  std::vector<scl::stencil::Field> decls{
      {"temp", [](const Index&) { return 45.0f; }, ""},  // uniform 45 C
      {"power", power_at, ""},
  };
  // RC thermal update, conduction plus vertical leakage to the ambient.
  std::vector<scl::stencil::Stage> stages;
  stages.push_back(scl::stencil::make_stage(
      "thermal", 0,
      "$temp(0,0) + 0.4f * ($power(0,0)"
      " + ($temp(-1,0) + $temp(1,0) - 2.0f * $temp(0,0)) * 0.12f"
      " + ($temp(0,-1) + $temp(0,1) - 2.0f * $temp(0,0)) * 0.12f"
      " + (40.0f - $temp(0,0)) * 0.03f)",
      fields, 2));
  return scl::stencil::StencilProgram("floorplan-thermal", 2,
                                      {kDie, kDie, 1}, kSteps,
                                      std::move(decls), std::move(stages));
}

}  // namespace

int main() {
  const scl::stencil::StencilProgram program = make_floorplan_program();

  // A heterogeneous accelerator: 2x2 pipe-connected kernels, 8 fused steps.
  scl::sim::DesignConfig config;
  config.kind = scl::sim::DesignKind::kHeterogeneous;
  config.fused_iterations = 8;
  config.parallelism = {2, 2, 1};
  config.tile_size = {48, 48, 1};
  config.unroll = 4;

  const scl::sim::Executor executor(scl::fpga::virtex7_690t());
  const scl::sim::SimResult result =
      executor.run(program, config, scl::sim::SimMode::kFunctional);

  // Golden check: the pipelined, tiled accelerator must agree bit-exactly
  // with the straightforward reference implementation.
  scl::stencil::ReferenceExecutor reference(program);
  reference.run(kSteps);
  std::int64_t mismatches = 0;
  scl::stencil::for_each_cell(program.grid_box(), [&](const Index& p) {
    if ((*result.fields)[0].at(p) != reference.field(0).at(p)) ++mismatches;
  });
  std::cout << "bit-exact vs reference: "
            << (mismatches == 0 ? "yes" : scl::str_cat("NO (", mismatches,
                                                       " mismatches)"))
            << "\n";

  // Temperature summary per floorplan block.
  struct Block {
    const char* name;
    Box box;
  };
  const Block blocks[] = {
      {"core0", Box{{12, 12, 0}, {40, 44, 1}}},
      {"core1", Box{{56, 50, 0}, {84, 86, 1}}},
      {"cache", Box{{12, 56, 0}, {44, 86, 1}}},
  };
  for (const Block& b : blocks) {
    float peak = 0.0f;
    double sum = 0.0;
    scl::stencil::for_each_cell(b.box, [&](const Index& p) {
      const float t = (*result.fields)[0].at(p);
      peak = std::max(peak, t);
      sum += t;
    });
    std::cout << b.name << ": peak "
              << scl::format_fixed(peak, 1) << " C, mean "
              << scl::format_fixed(sum / static_cast<double>(b.box.volume()),
                                   1)
              << " C\n";
  }

  std::cout << "accelerator time: " << scl::format_fixed(result.total_ms, 3)
            << " ms (" << scl::format_thousands(result.total_cycles)
            << " cycles), " << result.region_executions
            << " region passes, redundancy "
            << scl::format_fixed(100.0 * result.redundancy_ratio(), 1)
            << "%\n";
  return 0;
}
