// Design-space exploration walkthrough.
//
// Evaluates a grid of (design, fusion depth, balancing) points for
// HotSpot-2D through the framework's evaluate() API and prints the
// latency/resource landscape the optimizer searches — including the points
// that violate the device budget, which a table-level view makes obvious.
#include <iostream>

#include "core/framework.hpp"
#include "stencil/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using scl::sim::DesignConfig;
using scl::sim::DesignKind;

int main() {
  const auto program =
      scl::stencil::find_benchmark("HotSpot-2D").make_scaled({2048, 2048, 1},
                                                             500);
  scl::core::FrameworkOptions options;
  options.simulate = false;
  options.generate_code = false;
  const scl::core::Framework framework(program, options);
  const scl::fpga::ResourceVector budget =
      framework.optimizer().budget();

  scl::TableWriter table({"design", "h", "shrink", "pred Mcyc", "BRAM18",
                          "LUT", "fits"});
  for (const DesignKind kind :
       {DesignKind::kBaseline, DesignKind::kHeterogeneous}) {
    for (const std::int64_t h : {8, 16, 32, 64}) {
      for (const std::int64_t shrink : {0, 4}) {
        if (kind == DesignKind::kBaseline && shrink != 0) continue;
        DesignConfig config;
        config.kind = kind;
        config.fused_iterations = h;
        config.parallelism = {4, 4, 1};
        config.tile_size = {64, 64, 1};
        config.edge_shrink = {shrink, shrink, 0};
        config.unroll = 4;
        const scl::core::DesignPoint point = framework.evaluate(config);
        table.add_row(
            {scl::sim::to_string(kind), std::to_string(h),
             std::to_string(shrink),
             scl::format_fixed(point.prediction.total_cycles / 1e6, 1),
             std::to_string(point.resources.total.bram18),
             std::to_string(point.resources.total.lut),
             point.resources.total.fits_within(budget) ? "yes" : "NO"});
      }
    }
  }
  std::cout << "HotSpot-2D 2048x2048 design space (4x4 kernels, N_PE=4), "
            << "budget " << budget.to_string() << ":\n\n"
            << table.to_text();
  return 0;
}
